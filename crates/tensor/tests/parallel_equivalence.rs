//! Serial-vs-parallel bitwise equivalence for the parallel kernels.
//!
//! The determinism contract (DESIGN.md, "Parallelism") promises that every
//! parallel kernel produces *bitwise identical* output at any thread count:
//! chunk boundaries depend only on problem size, each chunk writes a
//! disjoint output region, and no floating-point combination order changes
//! with the worker count. These tests pin a reference result at 1 thread
//! and re-run at 2 and 4 threads, comparing raw `f64` data exactly.
//!
//! All problem sizes here sit *above* the serial-fallback thresholds so
//! the parallel code paths actually execute.

use cf_tensor::{ops, Tape, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// `cf_par::set_threads` mutates a process-wide pool, so tests that change
/// the thread count must not interleave.
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Deterministic filler: a splitmix-style generator, with a sprinkling of
/// exact zeros to exercise the zero-skip fast paths.
fn filled(shape: &[usize], seed: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let data: Vec<f64> = (0..len)
        .map(|_| {
            state = state.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            let bits = (state >> 11) as f64 / (1u64 << 53) as f64;
            if bits < 0.125 {
                0.0
            } else {
                2.0 * bits - 1.0
            }
        })
        .collect();
    Tensor::from_vec(shape.to_vec(), data).expect("shape/data agree")
}

/// Runs `f` at 1 thread for a reference, then asserts the outputs at 2 and
/// 4 threads are bitwise identical to it.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    cf_par::set_threads(1);
    let reference = f();
    for threads in [2, 4] {
        cf_par::set_threads(threads);
        assert_eq!(f(), reference, "output differs at {threads} threads");
    }
}

#[test]
fn matmul_family_is_bitwise_identical_across_thread_counts() {
    let _guard = pool_lock();
    // 2·m·k·n = 294,912 ≥ PAR_FLOP_THRESHOLD for all three kernels.
    let (m, k, n) = (64, 48, 48);
    let a = filled(&[m, k], 1);
    let b = filled(&[k, n], 2);
    let a_t = filled(&[k, m], 3);
    let b_rows = filled(&[n, k], 4);
    assert_thread_invariant(|| {
        (
            a.matmul(&b).data().to_vec(),
            a.matmul_nt(&b_rows).data().to_vec(),
            a_t.matmul_tn(&b).data().to_vec(),
        )
    });
}

#[test]
fn causal_conv_forward_and_backward_are_bitwise_identical() {
    let _guard = pool_lock();
    // n²·T² = 147,456 ≥ PAR_ELEM_THRESHOLD.
    let (n, t) = (12, 32);
    let x = filled(&[n, t], 5);
    let kernel = filled(&[n, n, t], 6);
    let grad_out = filled(&[n, n, t], 7);
    assert_thread_invariant(|| {
        (
            ops::causal_conv(&x, &kernel).data().to_vec(),
            ops::causal_conv_backward_kernel(&x, &grad_out)
                .data()
                .to_vec(),
            ops::causal_conv_backward_x(&kernel, &grad_out)
                .data()
                .to_vec(),
        )
    });
}

#[test]
fn tape_gradients_are_bitwise_identical_across_thread_counts() {
    let _guard = pool_lock();
    let (m, k, n) = (64, 48, 48);
    let a0 = filled(&[m, k], 8);
    let b0 = filled(&[k, n], 9);
    assert_thread_invariant(|| {
        let mut tape = Tape::new();
        let a = tape.leaf(a0.clone(), true);
        let b = tape.leaf(b0.clone(), true);
        let prod = tape.matmul(a, b);
        let loss = tape.sum_all(prod);
        let grads = tape.backward(loss);
        (
            grads.expect(a, "a").data().to_vec(),
            grads.expect(b, "b").data().to_vec(),
        )
    });
}

#[test]
fn parallel_matmul_gradient_matches_finite_difference() {
    let _guard = pool_lock();
    cf_par::set_threads(4);
    // Big enough for the parallel path; gradcheck a handful of entries.
    let (m, k, n) = (64, 48, 48);
    let a0 = filled(&[m, k], 10);
    let b0 = filled(&[k, n], 11);
    let loss_of = |a_t: &Tensor, b_t: &Tensor| {
        let mut tape = Tape::new();
        let a = tape.leaf(a_t.clone(), true);
        let b = tape.leaf(b_t.clone(), true);
        let prod = tape.matmul(a, b);
        let loss = tape.mean_all(prod);
        tape.value(loss).item()
    };
    let (ga, gb) = {
        let mut tape = Tape::new();
        let a = tape.leaf(a0.clone(), true);
        let b = tape.leaf(b0.clone(), true);
        let prod = tape.matmul(a, b);
        let loss = tape.mean_all(prod);
        let grads = tape.backward(loss);
        (grads.expect(a, "a").clone(), grads.expect(b, "b").clone())
    };
    let eps = 1e-6;
    for idx in [0, 7, m * k / 2, m * k - 1] {
        let mut plus = a0.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = a0.clone();
        minus.data_mut()[idx] -= eps;
        let numeric = (loss_of(&plus, &b0) - loss_of(&minus, &b0)) / (2.0 * eps);
        let analytic = ga.data()[idx];
        assert!(
            (numeric - analytic).abs() < 1e-6,
            "dL/da[{idx}]: numeric {numeric} vs analytic {analytic}"
        );
    }
    for idx in [0, 13, k * n / 2, k * n - 1] {
        let mut plus = b0.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = b0.clone();
        minus.data_mut()[idx] -= eps;
        let numeric = (loss_of(&a0, &plus) - loss_of(&a0, &minus)) / (2.0 * eps);
        let analytic = gb.data()[idx];
        assert!(
            (numeric - analytic).abs() < 1e-6,
            "dL/db[{idx}]: numeric {numeric} vs analytic {analytic}"
        );
    }
}
