//! Stress and edge-case tests for the autodiff tape: deep graphs, shared
//! subexpressions, numerically extreme inputs, and shape-mismatch panics.

use cf_tensor::{Tape, Tensor};

#[test]
fn deep_chain_gradients_stay_exact() {
    // y = ((((x·2)·2)…)·2) with 64 links ⇒ dy/dx = 2^64 exactly
    // (powers of two are exact in f64).
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(1.0), true);
    let mut cur = x;
    for _ in 0..64 {
        cur = tape.scale(cur, 2.0);
    }
    let grads = tape.backward(cur);
    assert_eq!(grads.expect(x, "x").item(), 2f64.powi(64));
}

#[test]
fn diamond_shaped_graph_accumulates_both_paths() {
    // y = a·x + b·x where a, b derived from x as well:
    // y = (x+x)·x = 2x² ⇒ dy/dx = 4x.
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(3.0), true);
    let sum = tape.add(x, x);
    let y = tape.mul(sum, x);
    let grads = tape.backward(y);
    assert_eq!(grads.expect(x, "x").item(), 12.0);
}

#[test]
fn fan_out_to_many_consumers() {
    // x feeds 20 independent squares, summed: y = 20·x² ⇒ dy/dx = 40x.
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(0.5), true);
    let mut acc = None;
    for _ in 0..20 {
        let sq = tape.square(x);
        acc = Some(match acc {
            None => sq,
            Some(a) => tape.add(a, sq),
        });
    }
    let grads = tape.backward(acc.unwrap());
    assert!((grads.expect(x, "x").item() - 20.0).abs() < 1e-12);
}

#[test]
fn softmax_saturation_keeps_gradients_finite() {
    // Extreme logits saturate softmax; gradients must be ≈ 0, not NaN.
    let mut tape = Tape::new();
    let x = tape.leaf(
        Tensor::from_vec(vec![1, 3], vec![1000.0, -1000.0, 0.0]).unwrap(),
        true,
    );
    let s = tape.softmax_rows(x);
    let w = tape.mul_const(
        s,
        Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap(),
    );
    let loss = tape.sum_all(w);
    let grads = tape.backward(loss);
    let g = grads.expect(x, "x");
    assert!(g.all_finite());
    assert!(g.abs().max() < 1e-6, "saturated softmax should be flat");
}

#[test]
fn sigmoid_and_tanh_extremes_are_finite() {
    let mut tape = Tape::new();
    let x = tape.leaf(
        Tensor::from_vec(vec![1, 4], vec![-700.0, -30.0, 30.0, 700.0]).unwrap(),
        true,
    );
    let sg = tape.sigmoid(x);
    let th = tape.tanh(sg);
    let loss = tape.sum_all(th);
    let grads = tape.backward(loss);
    assert!(tape.value(sg).all_finite());
    assert!(grads.expect(x, "x").all_finite());
}

#[test]
fn zero_input_conv_has_zero_output_and_kernel_grad() {
    let mut tape = Tape::new();
    let x = tape.constant(Tensor::zeros(&[2, 4]));
    let k = tape.leaf(Tensor::ones(&[2, 2, 4]), true);
    let conv = tape.causal_conv(x, k);
    assert_eq!(tape.value(conv).sum(), 0.0);
    let loss = tape.sum_all(conv);
    let grads = tape.backward(loss);
    // d(Σ conv)/dk = Σ_t x-terms = 0 since x ≡ 0.
    assert_eq!(grads.expect(k, "k").l1_norm(), 0.0);
}

#[test]
fn interior_node_gradients_are_recorded() {
    // The detector relies on reading gradients at interior nodes (the
    // softmaxed attention matrix), not just leaves.
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::ones(&[2, 2]), true);
    let s = tape.softmax_rows(x);
    let sq = tape.square(s);
    let loss = tape.sum_all(sq);
    let grads = tape.backward(loss);
    assert!(grads.get(s).is_some(), "interior gradient missing");
    // d(Σ s²)/ds = 2s = 1 at the uniform point.
    let gs = grads.get(s).unwrap();
    for &v in gs.data() {
        assert!((v - 1.0).abs() < 1e-12);
    }
}

#[test]
fn backward_is_isolated_between_seeds() {
    // Two backward passes over the same tape must not contaminate each
    // other (the detector runs one pass per target series).
    let mut tape = Tape::new();
    let x = tape.leaf(
        Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
        true,
    );
    let y = tape.square(x);

    let mut seed0 = Tensor::zeros(&[2, 2]);
    seed0.set2(0, 0, 1.0);
    let g0 = tape.backward_with_seed(y, seed0);
    let mut seed1 = Tensor::zeros(&[2, 2]);
    seed1.set2(1, 1, 1.0);
    let g1 = tape.backward_with_seed(y, seed1);

    assert_eq!(g0.expect(x, "x").data(), &[2.0, 0.0, 0.0, 0.0]);
    assert_eq!(g1.expect(x, "x").data(), &[0.0, 0.0, 0.0, 8.0]);
}

#[test]
#[should_panic(expected = "inner dims")]
fn matmul_shape_mismatch_panics() {
    let mut tape = Tape::new();
    let a = tape.constant(Tensor::ones(&[2, 3]));
    let b = tape.constant(Tensor::ones(&[2, 3]));
    let _ = tape.matmul(a, b);
}

#[test]
#[should_panic(expected = "seed shape")]
fn backward_with_wrong_seed_shape_panics() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::ones(&[2, 2]), true);
    let _ = tape.backward_with_seed(x, Tensor::ones(&[3, 3]));
}

#[test]
fn large_tape_reuse_pattern() {
    // Simulate the training loop's build-use-drop pattern at moderate
    // scale: 50 tapes of ~200 nodes each; gradients must stay consistent.
    for step in 0..50 {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(&[4, 4], 1.0 + step as f64 * 0.01), true);
        let mut cur = x;
        for _ in 0..40 {
            let t = tape.tanh(cur);
            cur = tape.add(t, x);
        }
        let loss = tape.mean_all(cur);
        let grads = tape.backward(loss);
        assert!(grads.expect(x, "x").all_finite());
    }
}

#[test]
fn l1_subgradient_at_zero_is_zero() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_slice(&[0.0, -2.0, 3.0]), true);
    let l1 = tape.l1(x);
    assert_eq!(tape.value(l1).item(), 5.0);
    let grads = tape.backward(l1);
    // At exactly 0 any value in [−1, 1] is a valid subgradient of |·|;
    // only require the implementation's choice to stay in that interval.
    let g = grads.expect(x, "x");
    assert!(g.data()[0].abs() <= 1.0);
    assert_eq!(g.data()[1], -1.0);
    assert_eq!(g.data()[2], 1.0);
}
