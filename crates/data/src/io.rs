//! CSV import/export for time-series matrices — the adoption path for
//! running CausalFormer on user data.
//!
//! The format is plain CSV with one **column per series** and one row per
//! time slot (the layout NOAA/NetSim-style exports use), with an optional
//! header row of series names. [`write_series_csv`] round-trips exactly.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// Offending cell text.
        text: String,
    },
    /// A row has a different number of cells than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Cells found.
        found: usize,
        /// Cells expected.
        expected: usize,
    },
    /// No data rows were found.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadNumber { line, column, text } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {text:?} as a number"
                )
            }
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} cells, expected {expected}"),
            CsvError::Empty => write!(f, "no data rows found"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Result of [`read_series_csv`]: the `N×L` matrix plus series names
/// (from the header, or `S1…SN`).
#[derive(Debug, Clone)]
pub struct SeriesCsv {
    /// Series matrix, one row per series.
    pub series: Tensor,
    /// One name per series.
    pub names: Vec<String>,
}

impl SeriesCsv {
    /// Wraps the matrix into a [`Dataset`] with an empty ground-truth
    /// graph (user data has no known truth).
    pub fn into_dataset(self, name: impl Into<String>) -> Dataset {
        let n = self.series.shape()[0];
        Dataset {
            name: name.into(),
            series: self.series,
            truth: CausalGraph::new(n),
        }
    }
}

/// Reads a column-per-series CSV from any reader. A first row that fails
/// numeric parsing entirely is treated as a header.
pub fn read_series_csv<R: Read>(reader: R) -> Result<SeriesCsv, CsvError> {
    let buf = BufReader::new(reader);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut names: Option<Vec<String>> = None;
    let mut expected = None;

    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if let Some(exp) = expected {
            if cells.len() != exp {
                return Err(CsvError::RaggedRow {
                    line: line_no,
                    found: cells.len(),
                    expected: exp,
                });
            }
        } else {
            expected = Some(cells.len());
        }

        let parsed: Result<Vec<f64>, usize> = cells
            .iter()
            .enumerate()
            .map(|(c, s)| s.parse::<f64>().map_err(|_| c))
            .collect();
        match parsed {
            Ok(values) => rows.push(values),
            Err(col) => {
                // A non-numeric row is only legal as the very first line
                // (header).
                if rows.is_empty() && names.is_none() {
                    names = Some(cells.iter().map(|s| s.to_string()).collect());
                } else {
                    return Err(CsvError::BadNumber {
                        line: line_no,
                        column: col + 1,
                        text: cells[col].to_string(),
                    });
                }
            }
        }
    }

    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let l = rows.len();
    let n = rows[0].len();
    // Transpose rows (time-major) into the N×L series matrix.
    let mut data = vec![0.0f64; n * l];
    for (t, row) in rows.iter().enumerate() {
        for (i, &v) in row.iter().enumerate() {
            data[i * l + t] = v;
        }
    }
    let series = Tensor::from_vec(vec![n, l], data).expect("consistent by construction");
    let names = names.unwrap_or_else(|| (1..=n).map(|i| format!("S{i}")).collect());
    Ok(SeriesCsv { series, names })
}

/// Reads a column-per-series CSV file.
pub fn read_series_csv_file(path: impl AsRef<Path>) -> Result<SeriesCsv, CsvError> {
    read_series_csv(std::fs::File::open(path)?)
}

/// Writes an `N×L` series matrix as column-per-series CSV with a header.
pub fn write_series_csv<W: Write>(
    writer: &mut W,
    series: &Tensor,
    names: &[String],
) -> Result<(), CsvError> {
    assert_eq!(series.rank(), 2, "series must be N×L");
    let (n, l) = (series.shape()[0], series.shape()[1]);
    assert_eq!(names.len(), n, "one name per series");
    writeln!(writer, "{}", names.join(","))?;
    for t in 0..l {
        let row: Vec<String> = (0..n).map(|i| format!("{}", series.get2(i, t))).collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headerless_csv() {
        let csv = "1.0,2.0\n3.0,4.0\n5.0,6.0\n";
        let parsed = read_series_csv(csv.as_bytes()).unwrap();
        assert_eq!(parsed.series.shape(), &[2, 3]);
        // Column 0 is series 0 over time.
        assert_eq!(parsed.series.row(0), &[1.0, 3.0, 5.0]);
        assert_eq!(parsed.names, vec!["S1", "S2"]);
    }

    #[test]
    fn parses_header_and_whitespace() {
        let csv = "temp, pressure \n 1.5 , -2.0\n2.5, -3.0\n";
        let parsed = read_series_csv(csv.as_bytes()).unwrap();
        assert_eq!(parsed.names, vec!["temp", "pressure"]);
        assert_eq!(parsed.series.row(1), &[-2.0, -3.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_series_csv("1,2\n3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_numbers_after_data() {
        let err = read_series_csv("1,2\n3,x\n".as_bytes()).unwrap_err();
        match err {
            CsvError::BadNumber { line, column, text } => {
                assert_eq!((line, column), (2, 2));
                assert_eq!(text, "x");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            read_series_csv("".as_bytes()).unwrap_err(),
            CsvError::Empty
        ));
        assert!(matches!(
            read_series_csv("a,b\n".as_bytes()).unwrap_err(),
            CsvError::Empty
        ));
    }

    #[test]
    fn roundtrip_write_read() {
        let series =
            Tensor::from_vec(vec![2, 4], vec![1.0, 2.5, -3.0, 0.125, 9.0, 8.0, 7.0, 6.5]).unwrap();
        let names = vec!["a".to_string(), "b".to_string()];
        let mut buf = Vec::new();
        write_series_csv(&mut buf, &series, &names).unwrap();
        let parsed = read_series_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed.series, series);
        assert_eq!(parsed.names, names);
    }

    #[test]
    fn into_dataset_has_empty_truth() {
        let parsed = read_series_csv("1,2\n3,4\n".as_bytes()).unwrap();
        let d = parsed.into_dataset("user-data");
        assert_eq!(d.name, "user-data");
        assert!(d.truth.is_empty());
        assert_eq!(d.num_series(), 2);
    }
}
