//! Simulated sea-surface temperature (SST) on an advection lattice.
//!
//! The paper's case study (§5.6, Figs. 9–10) runs CausalFormer on NOAA
//! OI-SST grid cells in the North Atlantic and checks that the discovered
//! causal relations align with the known ocean currents: south→north
//! relations along the Gulf Stream / North Atlantic Drift (western and
//! central basin), north→south around Greenland and along the Canary
//! Current (eastern basin). We cannot ship NOAA data, so this module builds
//! a lattice whose "currents" are *prescribed*: a clockwise subtropical
//! gyre. Temperature is advected one upstream cell per time slot, relaxed
//! toward a latitude-dependent equilibrium, seasonally forced, and
//! perturbed with noise. The ground-truth causal graph (upstream cell →
//! cell, delay 1) is exact, which turns the paper's qualitative map
//! comparison into a measurable check.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration of the SST lattice.
#[derive(Debug, Clone, Copy)]
pub struct SstConfig {
    /// Grid rows (latitude bands; row 0 is the northernmost).
    pub height: usize,
    /// Grid columns (longitude bands; col 0 is the westernmost).
    pub width: usize,
    /// Number of recorded slots (paper: 97 slots of 38 days over 10 years).
    pub length: usize,
    /// Advection coefficient κ: fraction of a cell's next temperature
    /// contributed by its upstream neighbour.
    pub advection: f64,
    /// Relaxation coefficient toward the latitude equilibrium.
    pub relaxation: f64,
    /// Seasonal forcing amplitude.
    pub seasonal_amp: f64,
    /// Slots per seasonal cycle (38-day slots ⇒ ≈ 9.6 per year).
    pub season_period: f64,
    /// Process noise standard deviation.
    pub noise: f64,
}

impl Default for SstConfig {
    fn default() -> Self {
        Self {
            height: 8,
            width: 8,
            length: 97,
            advection: 0.5,
            relaxation: 0.2,
            seasonal_amp: 0.4,
            season_period: 9.6,
            noise: 0.25,
        }
    }
}

/// A generated SST dataset plus the lattice geometry needed for the
/// Fig. 10 style current-alignment analysis.
#[derive(Debug, Clone)]
pub struct SstData {
    /// The series (one per grid cell, row-major) and ground-truth graph.
    pub dataset: Dataset,
    /// Grid rows.
    pub height: usize,
    /// Grid columns.
    pub width: usize,
    /// Prescribed flow direction per cell as `(d_row, d_col)` — the
    /// direction water *moves toward* (e.g. `(-1, 0)` flows north).
    pub flow: Vec<(isize, isize)>,
}

/// Meridional orientation of a causal relation on the lattice (Fig. 10
/// classifies edges into S→N and N→S).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meridional {
    /// Cause lies south of its effect (warm currents carrying heat north).
    SouthToNorth,
    /// Cause lies north of its effect (cold currents pushing south).
    NorthToSouth,
    /// Same latitude band (zonal relation) or self relation.
    Zonal,
}

impl SstData {
    /// Flat series index of grid cell `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> usize {
        assert!(row < self.height && col < self.width);
        row * self.width + col
    }

    /// Grid coordinates of a flat series index.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.height * self.width);
        (idx / self.width, idx % self.width)
    }

    /// Classifies a causal relation by meridional direction. Row 0 is the
    /// northernmost band, so a cause with a *larger* row index than its
    /// effect lies further south.
    pub fn meridional(&self, from: usize, to: usize) -> Meridional {
        let (rf, _) = self.coords(from);
        let (rt, _) = self.coords(to);
        match rf.cmp(&rt) {
            std::cmp::Ordering::Greater => Meridional::SouthToNorth,
            std::cmp::Ordering::Less => Meridional::NorthToSouth,
            std::cmp::Ordering::Equal => Meridional::Zonal,
        }
    }
}

/// The prescribed clockwise-gyre flow direction at a cell, rounded to the
/// 8-neighbourhood. Mirrors the North Atlantic subtropical circulation:
/// northward western boundary current (Gulf-Stream analogue), eastward
/// drift across the north, southward eastern boundary current (Canary
/// analogue), westward return flow in the south.
fn gyre_flow(height: usize, width: usize, row: usize, col: usize) -> (isize, isize) {
    // Vector field tangent to circles around the basin centre, clockwise
    // when row 0 is north: v = (d_row, d_col) = (-dx, -dy) rotated.
    let cy = (height as f64 - 1.0) / 2.0;
    let cx = (width as f64 - 1.0) / 2.0;
    let dy = row as f64 - cy; // + = south of centre
    let dx = col as f64 - cx; // + = east of centre
                              // Clockwise tangent. In map coordinates (x = east, y = north = −row),
                              // the clockwise tangent at offset (px, py) is (py, −px); converting the
                              // north component back to row units gives (d_row, d_col) = (dx, −dy).
    let vr = dx;
    let vc = -dy;
    let norm = (vr * vr + vc * vc).sqrt();
    if norm < 1e-9 {
        return (0, 0); // basin centre: no advection
    }
    let quantise = |v: f64| -> isize {
        if v > 0.382 {
            1
        } else if v < -0.382 {
            -1
        } else {
            0
        }
    };
    (quantise(vr / norm), quantise(vc / norm))
}

/// Generates the SST lattice dataset with its exact causal ground truth.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: SstConfig) -> SstData {
    assert!(config.height >= 3 && config.width >= 3, "grid too small");
    assert!(config.length >= 20, "series too short");
    assert!(
        config.advection + config.relaxation < 1.0,
        "advection + relaxation must leave positive self-persistence"
    );
    let (h, w) = (config.height, config.width);
    let n = h * w;
    let noise = Normal::new(0.0, config.noise).expect("valid normal");

    // Flow field and upstream map.
    let mut flow = Vec::with_capacity(n);
    let mut upstream = Vec::with_capacity(n);
    for row in 0..h {
        for col in 0..w {
            let dir = gyre_flow(h, w, row, col);
            flow.push(dir);
            // Water arrives from the cell opposite to the flow direction.
            let ur = row as isize - dir.0;
            let uc = col as isize - dir.1;
            let up = if ur >= 0 && ur < h as isize && uc >= 0 && uc < w as isize {
                (ur as usize) * w + uc as usize
            } else {
                row * w + col // boundary: no inflow, self only
            };
            upstream.push(up);
        }
    }

    // Ground truth: self persistence everywhere + upstream advection.
    let mut truth = CausalGraph::new(n);
    for c in 0..n {
        truth.add_edge(c, c, Some(1));
        if upstream[c] != c {
            truth.add_edge(upstream[c], c, Some(1));
        }
    }

    // Latitude equilibrium: warm south (large row), cold north.
    let equilibrium: Vec<f64> = (0..n)
        .map(|c| {
            let row = c / w;
            // 0 °C at the north edge to ~24 °C at the south edge.
            24.0 * row as f64 / (h - 1) as f64
        })
        .collect();

    let burn = 40;
    let total = burn + config.length;
    let mut temp: Vec<f64> = equilibrium.clone();
    let mut next = vec![0.0f64; n];
    let mut data = vec![0.0f64; n * config.length];
    let persistence = 1.0 - config.advection - config.relaxation;

    for t in 0..total {
        let season = config.seasonal_amp
            * (2.0 * std::f64::consts::PI * t as f64 / config.season_period).sin();
        for c in 0..n {
            next[c] = persistence * temp[c]
                + config.advection * temp[upstream[c]]
                + config.relaxation * equilibrium[c]
                + season
                + noise.sample(rng);
        }
        std::mem::swap(&mut temp, &mut next);
        if t >= burn {
            let rec = t - burn;
            for c in 0..n {
                data[c * config.length + rec] = temp[c];
            }
        }
    }

    SstData {
        dataset: Dataset {
            name: format!("sst-{h}x{w}"),
            series: Tensor::from_vec(vec![n, config.length], data)
                .expect("consistent by construction"),
            truth,
        },
        height: h,
        width: w,
        flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn western_boundary_flows_north_eastern_flows_south() {
        // Clockwise gyre: west side (col 0, mid rows) flows north (d_row<0),
        // east side flows south — the Gulf Stream / Canary asymmetry.
        let h = 8;
        let w = 8;
        let mid = h / 2;
        let (dr_west, _) = gyre_flow(h, w, mid, 0);
        let (dr_east, _) = gyre_flow(h, w, mid, w - 1);
        assert!(
            dr_west < 0,
            "west boundary should flow north, got {dr_west}"
        );
        assert!(
            dr_east > 0,
            "east boundary should flow south, got {dr_east}"
        );
    }

    #[test]
    fn generated_shapes_and_truth() {
        let mut rng = StdRng::seed_from_u64(0);
        let sst = generate(&mut rng, SstConfig::default());
        let n = 64;
        assert_eq!(sst.dataset.series.shape(), &[n, 97]);
        assert!(sst.dataset.series.all_finite());
        // Every cell has a self edge; most cells also have an inflow edge.
        for c in 0..n {
            assert!(sst.dataset.truth.has_edge(c, c));
        }
        let non_self = sst.dataset.truth.non_self_edges().count();
        assert!(
            non_self > n / 2,
            "expected many advection edges, got {non_self}"
        );
    }

    #[test]
    fn south_is_warmer_than_north_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let sst = generate(&mut rng, SstConfig::default());
        let series = &sst.dataset.series;
        let row_mean = |cell: usize| -> f64 {
            series.row(cell).iter().sum::<f64>() / series.shape()[1] as f64
        };
        let north = row_mean(sst.cell(0, 4));
        let south = row_mean(sst.cell(7, 4));
        assert!(
            south > north + 5.0,
            "south {south:.1} should be much warmer than north {north:.1}"
        );
    }

    #[test]
    fn meridional_classification() {
        let mut rng = StdRng::seed_from_u64(2);
        let sst = generate(&mut rng, SstConfig::default());
        let a = sst.cell(6, 1); // south-west
        let b = sst.cell(2, 1); // north-west
        assert_eq!(sst.meridional(a, b), Meridional::SouthToNorth);
        assert_eq!(sst.meridional(b, a), Meridional::NorthToSouth);
        assert_eq!(sst.meridional(a, sst.cell(6, 5)), Meridional::Zonal);
    }

    #[test]
    fn ground_truth_edges_follow_prescribed_currents() {
        // Along the western boundary the truth edges must run S→N.
        let mut rng = StdRng::seed_from_u64(3);
        let sst = generate(&mut rng, SstConfig::default());
        let mut s2n_west = 0;
        let mut n2s_west = 0;
        for e in sst.dataset.truth.non_self_edges() {
            let (_, cf) = sst.coords(e.from);
            if cf == 0 {
                match sst.meridional(e.from, e.to) {
                    Meridional::SouthToNorth => s2n_west += 1,
                    Meridional::NorthToSouth => n2s_west += 1,
                    Meridional::Zonal => {}
                }
            }
        }
        assert!(
            s2n_west > n2s_west,
            "western boundary: S→N {s2n_west} vs N→S {n2s_west}"
        );
    }

    #[test]
    fn seasonal_cycle_is_visible() {
        let mut rng = StdRng::seed_from_u64(4);
        let sst = generate(&mut rng, SstConfig::default());
        // Autocorrelation at the season period should be clearly positive.
        let row = sst.dataset.series.row(sst.cell(4, 4));
        let period = 10usize; // ≈ season_period rounded
        let len = row.len() - period;
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for t in 0..len {
            num += (row[t] - mean) * (row[t + period] - mean);
        }
        for &v in row {
            den += (v - mean) * (v - mean);
        }
        let ac = num / den;
        assert!(ac > 0.1, "seasonal autocorrelation too weak: {ac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&mut StdRng::seed_from_u64(5), SstConfig::default());
        let b = generate(&mut StdRng::seed_from_u64(5), SstConfig::default());
        assert_eq!(a.dataset.series, b.dataset.series);
    }
}
