//! The four synthetic causal structures of the paper's Fig. 7: diamond,
//! mediator, v-structure, and fork.
//!
//! Each dataset is a non-linear structural equation model (SEM) driven by
//! standard-normal additive noise. Every series keeps a weak autoregressive
//! self-dependence — the paper treats self-causation as part of the causal
//! graph (Fig. 1 shows the `S4→S4` loop, and §5.3 counts self relations when
//! discussing v-structure/fork sparsity) — and each non-self edge applies a
//! smooth non-linearity to a lagged parent value.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Which of the four basic causal structures to generate (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// `S1→S2→S4`, `S1→S3→S4` (4 series).
    Diamond,
    /// `S1→S2→S3` plus the direct `S1→S3` (3 series).
    Mediator,
    /// `S1→S3←S2` — a collider (3 series).
    VStructure,
    /// `S2←S1→S3` — a common cause (3 series).
    Fork,
}

impl Structure {
    /// All four structures, in the paper's Table 1 order.
    pub const ALL: [Structure; 4] = [
        Structure::Diamond,
        Structure::Mediator,
        Structure::VStructure,
        Structure::Fork,
    ];

    /// Lower-case dataset name as used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Structure::Diamond => "diamond",
            Structure::Mediator => "mediator",
            Structure::VStructure => "v-structure",
            Structure::Fork => "fork",
        }
    }

    /// Number of time series in the structure.
    pub fn num_series(self) -> usize {
        match self {
            Structure::Diamond => 4,
            _ => 3,
        }
    }

    /// The non-self causal edges `(from, to, lag)` of the structure.
    pub fn edges(self) -> &'static [(usize, usize, usize)] {
        match self {
            Structure::Diamond => &[(0, 1, 1), (0, 2, 2), (1, 3, 1), (2, 3, 1)],
            Structure::Mediator => &[(0, 1, 1), (1, 2, 1), (0, 2, 2)],
            Structure::VStructure => &[(0, 2, 1), (1, 2, 2)],
            Structure::Fork => &[(0, 1, 1), (0, 2, 2)],
        }
    }

    /// The ground-truth causal graph, including the AR(1) self-loops the
    /// generator installs on every series.
    pub fn truth(self) -> CausalGraph {
        let n = self.num_series();
        let mut g = CausalGraph::new(n);
        for i in 0..n {
            g.add_edge(i, i, Some(1));
        }
        for &(from, to, lag) in self.edges() {
            g.add_edge(from, to, Some(lag));
        }
        g
    }
}

/// Coupling strength of non-self edges.
const EDGE_GAIN: f64 = 1.0;
/// AR(1) self-dependence coefficient.
const SELF_GAIN: f64 = 0.4;
/// Burn-in steps discarded before recording.
const BURN_IN: usize = 100;

/// The edge non-linearity: smooth, sign-preserving, bounded slope.
fn coupling(u: f64) -> f64 {
    u.tanh() + 0.2 * u
}

/// Generates a synthetic dataset of the given structure and length
/// (paper default: 1000) with standard-normal additive noise.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, structure: Structure, length: usize) -> Dataset {
    assert!(length > 10, "series too short to be meaningful");
    let n = structure.num_series();
    let noise = Normal::new(0.0, 1.0).expect("valid normal");
    let total = BURN_IN + length;
    // x[t][i]
    let mut x = vec![vec![0.0f64; n]; total];
    let max_lag = structure
        .edges()
        .iter()
        .map(|&(_, _, l)| l)
        .max()
        .unwrap_or(1)
        .max(1);

    for t in 0..total {
        for i in 0..n {
            let mut v = noise.sample(rng);
            if t >= 1 {
                v += SELF_GAIN * x[t - 1][i];
            }
            if t >= max_lag {
                for &(from, to, lag) in structure.edges() {
                    if to == i {
                        v += EDGE_GAIN * coupling(x[t - lag][from]);
                    }
                }
            }
            x[t][i] = v;
        }
    }

    let mut data = Vec::with_capacity(n * length);
    for i in 0..n {
        for t in 0..length {
            data.push(x[BURN_IN + t][i]);
        }
    }
    Dataset {
        name: structure.name().to_string(),
        series: Tensor::from_vec(vec![n, length], data).expect("consistent by construction"),
        truth: structure.truth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structures_have_documented_shapes() {
        assert_eq!(Structure::Diamond.num_series(), 4);
        assert_eq!(Structure::Mediator.num_series(), 3);
        // diamond: 4 self + 4 edges
        assert_eq!(Structure::Diamond.truth().num_edges(), 8);
        assert_eq!(Structure::Fork.truth().num_edges(), 5);
        assert_eq!(Structure::VStructure.truth().non_self_edges().count(), 2);
    }

    #[test]
    fn generated_dataset_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = generate(&mut rng, Structure::Diamond, 500);
        assert_eq!(d.series.shape(), &[4, 500]);
        assert_eq!(d.num_series(), 4);
        assert_eq!(d.len(), 500);
        assert!(d.series.all_finite());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&mut StdRng::seed_from_u64(1), Structure::Fork, 100);
        let b = generate(&mut StdRng::seed_from_u64(1), Structure::Fork, 100);
        assert_eq!(a.series, b.series);
        let c = generate(&mut StdRng::seed_from_u64(2), Structure::Fork, 100);
        assert_ne!(a.series, c.series);
    }

    /// Empirical check that the causal couplings really are in the data:
    /// the lagged cross-correlation along a ground-truth edge must beat the
    /// correlation along the reversed (non-causal) direction.
    #[test]
    fn causal_direction_carries_more_dependence() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = generate(&mut rng, Structure::Fork, 4000);
        let corr_lag = |a: usize, b: usize, lag: usize| -> f64 {
            let xa = d.series.row(a);
            let xb = d.series.row(b);
            let len = xa.len() - lag;
            let ma = xa[..len].iter().sum::<f64>() / len as f64;
            let mb = xb[lag..].iter().sum::<f64>() / len as f64;
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for t in 0..len {
                let (u, v) = (xa[t] - ma, xb[t + lag] - mb);
                num += u * v;
                da += u * u;
                db += v * v;
            }
            (num / (da.sqrt() * db.sqrt())).abs()
        };
        // Fork: S1→S2 at lag 1. Correlation(x0[t], x1[t+1]) should dominate
        // correlation(x1[t], x0[t+1]).
        assert!(
            corr_lag(0, 1, 1) > corr_lag(1, 0, 1) + 0.1,
            "causal {} vs anticausal {}",
            corr_lag(0, 1, 1),
            corr_lag(1, 0, 1)
        );
    }

    #[test]
    fn noise_keeps_series_distinct_across_runs() {
        // Series are stochastic, not a fixed trajectory.
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&mut rng, Structure::Mediator, 200);
        let r0 = d.series.row(0);
        let var = {
            let m = r0.iter().sum::<f64>() / r0.len() as f64;
            r0.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / r0.len() as f64
        };
        assert!(var > 0.5, "source series variance too small: {var}");
    }
}
