//! Windowing and standardisation utilities.
//!
//! The causality-aware transformer consumes fixed `N×T` observation windows
//! (paper §3: the observational window of `T` slots). This module slices a
//! long `N×L` series matrix into overlapping windows and z-scores each
//! series so heterogeneous scales (Lorenz-96 amplitudes vs BOLD signals)
//! do not dominate training.

use cf_tensor::Tensor;

/// Z-scores each row (series) of an `N×L` matrix: zero mean, unit variance.
/// Constant series are left centred at zero instead of dividing by zero.
pub fn standardize(series: &Tensor) -> Tensor {
    assert_eq!(series.rank(), 2, "standardize expects N×L");
    let (n, l) = (series.shape()[0], series.shape()[1]);
    let mut out = series.clone();
    for i in 0..n {
        let row = series.row(i);
        let mean = row.iter().sum::<f64>() / l as f64;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / l as f64;
        let std = var.sqrt();
        for t in 0..l {
            let v = (row[t] - mean) / if std > 1e-12 { std } else { 1.0 };
            out.set2(i, t, v);
        }
    }
    out
}

/// Slices an `N×L` matrix into `N×T` windows starting at multiples of
/// `stride`. Windows that would run past the end are dropped.
///
/// # Panics
/// Panics if `t_window` is zero, larger than the series, or `stride` is 0.
pub fn windows(series: &Tensor, t_window: usize, stride: usize) -> Vec<Tensor> {
    assert_eq!(series.rank(), 2, "windows expects N×L");
    let (n, l) = (series.shape()[0], series.shape()[1]);
    assert!(
        t_window > 0 && t_window <= l,
        "window {t_window} vs length {l}"
    );
    assert!(stride > 0, "stride must be positive");
    let mut out = Vec::new();
    let mut start = 0;
    while start + t_window <= l {
        let mut data = Vec::with_capacity(n * t_window);
        for i in 0..n {
            data.extend_from_slice(&series.row(i)[start..start + t_window]);
        }
        out.push(Tensor::from_vec(vec![n, t_window], data).expect("consistent"));
        start += stride;
    }
    out
}

/// Splits windows into `(train, validation)` keeping temporal order: the
/// final `val_frac` of windows become validation (no shuffling — shuffled
/// splits leak future data into training for overlapping windows).
pub fn split(windows: Vec<Tensor>, val_frac: f64) -> (Vec<Tensor>, Vec<Tensor>) {
    assert!((0.0..1.0).contains(&val_frac), "val_frac in [0,1)");
    let n_val = ((windows.len() as f64) * val_frac).round() as usize;
    let n_val = n_val.min(windows.len().saturating_sub(1));
    let cut = windows.len() - n_val;
    let mut w = windows;
    let val = w.split_off(cut);
    (w, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, l: usize) -> Tensor {
        let data: Vec<f64> = (0..n * l).map(|k| k as f64).collect();
        Tensor::from_vec(vec![n, l], data).unwrap()
    }

    #[test]
    fn standardize_zero_mean_unit_variance() {
        let t = ramp(2, 100);
        let s = standardize(&t);
        for i in 0..2 {
            let row = s.row(i);
            let mean = row.iter().sum::<f64>() / 100.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 100.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn standardize_constant_series_stays_finite() {
        let t = Tensor::full(&[1, 10], 5.0);
        let s = standardize(&t);
        assert!(s.all_finite());
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn windows_cover_and_align() {
        let t = ramp(2, 10);
        let w = windows(&t, 4, 2);
        // starts at 0, 2, 4, 6 → 4 windows
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].shape(), &[2, 4]);
        // window 1 of series 0 starts at value 2.
        assert_eq!(w[1].get2(0, 0), 2.0);
        // series 1 offset by l=10.
        assert_eq!(w[1].get2(1, 0), 12.0);
    }

    #[test]
    fn windows_stride_one_count() {
        let t = ramp(1, 10);
        assert_eq!(windows(&t, 4, 1).len(), 7);
        assert_eq!(windows(&t, 10, 1).len(), 1);
    }

    #[test]
    fn split_keeps_order_and_fraction() {
        let t = ramp(1, 20);
        let w = windows(&t, 4, 2); // 9 windows
        let total = w.len();
        let (train, val) = split(w, 0.25);
        assert_eq!(train.len() + val.len(), total);
        assert_eq!(val.len(), 2);
        // Validation windows are the chronologically last ones.
        assert!(train.last().unwrap().get2(0, 0) < val[0].get2(0, 0));
    }

    #[test]
    fn split_never_empties_training() {
        let t = ramp(1, 8);
        let w = windows(&t, 4, 4); // 2 windows
        let (train, val) = split(w, 0.9);
        assert_eq!(train.len(), 1);
        assert_eq!(val.len(), 1);
    }
}
