//! Lorenz-96 climate dynamics (paper Eq. 21), integrated with RK4.
//!
//! ```text
//! dx_i/dt = (x_{i+1} − x_{i−2}) · x_{i−1} − x_i + F
//! ```
//!
//! with cyclic indices. Each variable is therefore caused by itself and by
//! its neighbours `i−2`, `i−1`, `i+1` — a dense, strongly non-linear causal
//! graph. The paper simulates `N = 10` variables with forcing
//! `F ∈ [30, 40]` over 1000 units.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::Rng;

/// Configuration for the Lorenz-96 generator.
#[derive(Debug, Clone, Copy)]
pub struct Lorenz96Config {
    /// Number of variables (paper: 10). Must be ≥ 4 for the cyclic stencil.
    pub n: usize,
    /// Number of recorded samples (paper: 1000).
    pub length: usize,
    /// Forcing constant; the paper draws it from `[30, 40]`.
    pub forcing: f64,
    /// RK4 integration step.
    pub dt: f64,
    /// Integration sub-steps per recorded sample.
    pub substeps: usize,
}

impl Default for Lorenz96Config {
    fn default() -> Self {
        Self {
            n: 10,
            length: 1000,
            forcing: 35.0,
            dt: 0.01,
            substeps: 5,
        }
    }
}

fn derivative(x: &[f64], forcing: f64, out: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        let ip1 = (i + 1) % n;
        let im1 = (i + n - 1) % n;
        let im2 = (i + n - 2) % n;
        out[i] = (x[ip1] - x[im2]) * x[im1] - x[i] + forcing;
    }
}

/// Reusable RK4 integrator: state and scratch buffers are allocated once,
/// so advancing is allocation-free — streaming a 10M-sample trajectory into
/// a chunked store touches the heap only for the store's own buffers.
///
/// Construction seeds the initial state and runs the 500-substep burn-in,
/// exactly as [`generate`] always did (which is now a thin collector over
/// this stepper — trajectories stay bitwise identical per seed).
#[derive(Debug, Clone)]
pub struct Stepper {
    forcing: f64,
    dt: f64,
    x: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Stepper {
    /// Seeds `x_i = F + U[−0.5, 0.5)` and burns in 500 substeps.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: &Lorenz96Config) -> Self {
        assert!(
            config.n >= 4,
            "Lorenz-96 stencil needs at least 4 variables"
        );
        assert!(config.substeps > 0 && config.dt > 0.0);
        let n = config.n;
        let x: Vec<f64> = (0..n)
            .map(|_| config.forcing + rng.gen_range(-0.5..0.5))
            .collect();
        let mut stepper = Self {
            forcing: config.forcing,
            dt: config.dt,
            x,
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            tmp: vec![0.0; n],
        };
        for _ in 0..500 {
            stepper.substep();
        }
        stepper
    }

    /// The current state vector (one sample of all `n` variables).
    pub fn state(&self) -> &[f64] {
        &self.x
    }

    /// Advances one recorded sample (`substeps` RK4 integration steps).
    pub fn advance(&mut self, substeps: usize) {
        for _ in 0..substeps {
            self.substep();
        }
    }

    /// One RK4 step of size `dt`.
    fn substep(&mut self) {
        let (dt, forcing) = (self.dt, self.forcing);
        derivative(&self.x, forcing, &mut self.k1);
        for i in 0..self.x.len() {
            self.tmp[i] = self.x[i] + 0.5 * dt * self.k1[i];
        }
        derivative(&self.tmp, forcing, &mut self.k2);
        for i in 0..self.x.len() {
            self.tmp[i] = self.x[i] + 0.5 * dt * self.k2[i];
        }
        derivative(&self.tmp, forcing, &mut self.k3);
        for i in 0..self.x.len() {
            self.tmp[i] = self.x[i] + dt * self.k3[i];
        }
        derivative(&self.tmp, forcing, &mut self.k4);
        for i in 0..self.x.len() {
            self.x[i] += dt / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }
}

/// The ground-truth causal graph of an `n`-variable Lorenz-96 system:
/// each `i` is caused by `i−2`, `i−1`, `i+1` (cyclic) and itself, at one
/// sampled slot of delay.
pub fn truth(n: usize) -> CausalGraph {
    let mut g = CausalGraph::new(n);
    for i in 0..n {
        g.add_edge(i, i, Some(1));
        g.add_edge((i + 1) % n, i, Some(1));
        g.add_edge((i + n - 1) % n, i, Some(1));
        g.add_edge((i + n - 2) % n, i, Some(1));
    }
    g
}

/// Integrates a Lorenz-96 trajectory. The forcing in `config` is used
/// verbatim; see [`generate_random_forcing`] for the paper's `F ∈ [30,40]`
/// sampling. Initial state is the fixed point `x_i = F` perturbed with
/// small seeded noise; a 500-substep burn-in is discarded.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: Lorenz96Config) -> Dataset {
    let n = config.n;
    let mut data = vec![0.0f64; n * config.length];
    let mut t = 0;
    stream::<_, std::convert::Infallible, _>(rng, config, |x| {
        for (i, &v) in x.iter().enumerate() {
            data[i * config.length + t] = v;
        }
        t += 1;
        Ok(())
    })
    .expect("infallible sink");

    Dataset {
        name: format!("lorenz96-F{:.0}", config.forcing),
        series: Tensor::from_vec(vec![n, config.length], data).expect("consistent by construction"),
        truth: truth(n),
    }
}

/// Streaming generation: integrates the trajectory and hands each recorded
/// sample (a slice of `n` values) to `emit` without materialising the
/// `n × length` matrix — the out-of-core path writes these straight into a
/// chunked `cf-store` series store. `emit`'s error type propagates; the
/// samples are bitwise those of [`generate`] on the same seed and config.
pub fn stream<R, E, F>(rng: &mut R, config: Lorenz96Config, mut emit: F) -> Result<(), E>
where
    R: Rng + ?Sized,
    F: FnMut(&[f64]) -> Result<(), E>,
{
    assert!(config.length > 0, "length must be positive");
    let mut stepper = Stepper::new(rng, &config);
    for _ in 0..config.length {
        stepper.advance(config.substeps);
        emit(stepper.state())?;
    }
    Ok(())
}

/// Draws `F ~ U[30, 40]` (paper §5.1) and generates a trajectory.
pub fn generate_random_forcing<R: Rng + ?Sized>(rng: &mut R, n: usize, length: usize) -> Dataset {
    let forcing = rng.gen_range(30.0..=40.0);
    generate(
        rng,
        Lorenz96Config {
            n,
            length,
            forcing,
            ..Lorenz96Config::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truth_graph_degrees() {
        let g = truth(10);
        // 4 causes per variable.
        assert_eq!(g.num_edges(), 40);
        for i in 0..10 {
            assert_eq!(g.parents(i).len(), 4);
            assert!(g.has_edge(i, i));
            assert!(g.has_edge((i + 1) % 10, i));
        }
    }

    #[test]
    fn trajectory_is_finite_and_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = generate(
            &mut rng,
            Lorenz96Config {
                length: 500,
                ..Default::default()
            },
        );
        assert_eq!(d.series.shape(), &[10, 500]);
        assert!(d.series.all_finite());
        // Lorenz-96 trajectories stay within a few multiples of F.
        assert!(d.series.max() < 4.0 * 35.0);
        assert!(d.series.min() > -4.0 * 35.0);
    }

    #[test]
    fn trajectory_is_chaotic_not_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(
            &mut rng,
            Lorenz96Config {
                length: 300,
                ..Default::default()
            },
        );
        let row = d.series.row(0);
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / row.len() as f64;
        assert!(var > 1.0, "variance {var} too small — dynamics collapsed");
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_forcing() {
        let a = generate(&mut StdRng::seed_from_u64(5), Lorenz96Config::default());
        let b = generate(&mut StdRng::seed_from_u64(5), Lorenz96Config::default());
        assert_eq!(a.series, b.series);
        let c = generate(
            &mut StdRng::seed_from_u64(5),
            Lorenz96Config {
                forcing: 40.0,
                ..Default::default()
            },
        );
        assert_ne!(a.series, c.series);
    }

    #[test]
    fn streaming_matches_generate_bitwise() {
        let config = Lorenz96Config {
            length: 200,
            ..Default::default()
        };
        let d = generate(&mut StdRng::seed_from_u64(42), config);
        let mut streamed: Vec<Vec<f64>> = Vec::new();
        stream::<_, std::convert::Infallible, _>(&mut StdRng::seed_from_u64(42), config, |x| {
            streamed.push(x.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(streamed.len(), 200);
        let data = d.series.data();
        for (t, sample) in streamed.iter().enumerate() {
            for (i, &v) in sample.iter().enumerate() {
                assert_eq!(v.to_bits(), data[i * 200 + t].to_bits(), "({i}, {t})");
            }
        }
    }

    #[test]
    fn random_forcing_is_in_paper_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = generate_random_forcing(&mut rng, 10, 50);
        let f: f64 = d.name.trim_start_matches("lorenz96-F").parse().unwrap();
        assert!((30.0..=40.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_systems() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = generate(
            &mut rng,
            Lorenz96Config {
                n: 3,
                ..Default::default()
            },
        );
    }
}
