//! NetSim-style simulated fMRI BOLD data.
//!
//! The paper evaluates on the Smith et al. fMRI benchmark [48]: 28 brain
//! networks of 5/10/15/50 regions with series lengths between 50 and 5000.
//! That benchmark is itself *simulated* BOLD data; since the original files
//! cannot be redistributed, this module re-implements the generative
//! recipe:
//!
//! 1. draw a random, stable causal network over `N` regions,
//! 2. run linear latent dynamics `z_t = Aᵀ z_{t−1} + η` driven by the
//!    network,
//! 3. convolve each region's latent activity with a canonical double-gamma
//!    hemodynamic response function (HRF),
//! 4. add observation noise.
//!
//! The HRF smears temporal precedence — exactly the property that makes
//! fMRI causal discovery hard and why the paper reports no delay ground
//! truth for this dataset (Table 2 omits fMRI). Ground-truth edges
//! therefore carry `delay = None`.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration for one simulated brain network.
#[derive(Debug, Clone, Copy)]
pub struct FmriConfig {
    /// Number of regions (paper: 5, 10, 15, or 50).
    pub n_nodes: usize,
    /// Number of BOLD samples (paper: 50 to 5000).
    pub length: usize,
    /// Probability of a directed edge between two distinct regions.
    pub density: f64,
    /// Observation noise standard deviation.
    pub obs_noise: f64,
}

impl Default for FmriConfig {
    fn default() -> Self {
        Self {
            n_nodes: 5,
            length: 200,
            density: 0.3,
            obs_noise: 0.2,
        }
    }
}

impl FmriConfig {
    /// A NetSim-like configuration: edge probability chosen so the expected
    /// non-self degree is ≈ 1.2 per region, matching the sparse ring/modular
    /// networks of the original benchmark.
    pub fn netsim_like(n_nodes: usize, length: usize) -> Self {
        Self {
            n_nodes,
            length,
            density: (1.2 / (n_nodes.max(2) - 1) as f64).min(0.5),
            obs_noise: 0.2,
        }
    }
}

/// Canonical double-gamma HRF sampled at the series rate.
///
/// `h(t) = t^{a₁−1} e^{−t/b₁} / (b₁^{a₁} Γ(a₁)) − c · t^{a₂−1} e^{−t/b₂} /
/// (b₂^{a₂} Γ(a₂))` with the standard parameters a₁=6, a₂=16, b=1, c=1/6,
/// truncated to `taps` samples and normalised to unit peak.
pub fn hrf(taps: usize) -> Vec<f64> {
    assert!(taps >= 2, "HRF needs at least 2 taps");
    fn gamma_pdf(t: f64, a: u32, b: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        // Γ(a) = (a−1)! for integer shape parameters.
        let gamma_a: f64 = (1..a).map(f64::from).product();
        t.powf(f64::from(a) - 1.0) * (-t / b).exp() / (b.powi(a as i32) * gamma_a)
    }
    // Sample at 1 time-unit resolution (one slot ≈ one TR).
    let mut h: Vec<f64> = (0..taps)
        .map(|k| {
            let t = k as f64;
            gamma_pdf(t, 6, 1.0) - gamma_pdf(t, 16, 1.0) / 6.0
        })
        .collect();
    let peak = h.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(peak > 0.0, "HRF peak must be positive");
    for v in &mut h {
        *v /= peak;
    }
    h
}

/// Draws a random causal network: directed edges between distinct regions
/// with probability `density` plus a guaranteed self-decay on every region.
/// Off-diagonal weights are scaled down until the dynamics matrix has
/// spectral radius < 0.95, so the latent process is stable.
fn random_network<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    density: f64,
) -> (Vec<Vec<f64>>, CausalGraph) {
    // a[from][to]
    let mut a = vec![vec![0.0f64; n]; n];
    let mut g = CausalGraph::new(n);
    for i in 0..n {
        a[i][i] = 0.6;
        g.add_edge(i, i, None);
    }
    let mut any = false;
    for from in 0..n {
        for to in 0..n {
            if from != to && rng.gen_bool(density) {
                let sign = if rng.gen_bool(0.8) { 1.0 } else { -1.0 };
                a[from][to] = sign * rng.gen_range(0.4..0.8);
                g.add_edge(from, to, None);
                any = true;
            }
        }
    }
    if !any {
        // Guarantee at least one non-self relation so F1 is informative.
        let from = rng.gen_range(0..n);
        let to = (from + 1 + rng.gen_range(0..n - 1)) % n;
        a[from][to] = rng.gen_range(0.4..0.8);
        g.add_edge(from, to, None);
    }

    // Stabilise: estimate the spectral radius by power iteration on |A| and
    // shrink off-diagonals until it is < 0.95.
    loop {
        let rho = spectral_radius(&a);
        if rho < 0.95 {
            break;
        }
        let shrink = 0.9 * 0.95 / rho;
        for (from, row) in a.iter_mut().enumerate() {
            for (to, v) in row.iter_mut().enumerate() {
                if from != to {
                    *v *= shrink;
                }
            }
        }
    }
    (a, g)
}

fn spectral_radius(a: &[Vec<f64>]) -> f64 {
    let n = a.len();
    let mut v = vec![1.0f64; n];
    let mut lambda = 0.0;
    for _ in 0..50 {
        let mut w = vec![0.0f64; n];
        for (i, row) in a.iter().enumerate() {
            for (j, &aij) in row.iter().enumerate() {
                w[j] += aij.abs() * v[i];
            }
        }
        lambda = w.iter().copied().fold(0.0f64, |acc, x| acc.max(x.abs()));
        if lambda == 0.0 {
            return 0.0;
        }
        for x in &mut w {
            *x /= lambda;
        }
        v = w;
    }
    lambda
}

/// Generates one simulated fMRI network dataset.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: FmriConfig) -> Dataset {
    assert!(config.n_nodes >= 2, "need at least two regions");
    assert!(config.length >= 30, "BOLD series too short");
    let n = config.n_nodes;
    let (a, truth) = random_network(rng, n, config.density);
    let drive = Normal::new(0.0, 0.5).expect("valid normal");
    let obs = Normal::new(0.0, config.obs_noise).expect("valid normal");

    let hrf_taps = hrf(16);
    let burn = 50;
    let total = burn + config.length + hrf_taps.len();

    // Latent neural activity z[t][i].
    let mut z = vec![vec![0.0f64; n]; total];
    for t in 1..total {
        for i in 0..n {
            let mut v = drive.sample(rng);
            for (from, row) in a.iter().enumerate() {
                if row[i] != 0.0 {
                    v += row[i] * z[t - 1][from];
                }
            }
            z[t][i] = v;
        }
    }

    // BOLD: causal convolution of z with the HRF, plus observation noise.
    let mut data = vec![0.0f64; n * config.length];
    for i in 0..n {
        for t in 0..config.length {
            let t_abs = burn + t + hrf_taps.len() - 1;
            let mut bold = 0.0;
            for (k, &hk) in hrf_taps.iter().enumerate() {
                bold += hk * z[t_abs - k][i];
            }
            data[i * config.length + t] = bold + obs.sample(rng);
        }
    }

    Dataset {
        name: format!("fmri-{n}"),
        series: Tensor::from_vec(vec![n, config.length], data).expect("consistent by construction"),
        truth,
    }
}

/// The full 28-network suite mirroring the paper's benchmark mix: mostly
/// small networks (5/10/15 regions) of varying lengths, plus one large
/// 50-region network. Deterministic given `rng`.
pub fn suite<R: Rng + ?Sized>(rng: &mut R) -> Vec<Dataset> {
    let mut out = Vec::with_capacity(28);
    let mut push = |rng: &mut R, idx: usize, n_nodes: usize, length: usize| {
        let mut d = generate(rng, FmriConfig::netsim_like(n_nodes, length));
        d.name = format!("fmri-{n_nodes}-{idx:02}");
        out.push(d);
    };
    for idx in 0..10 {
        push(rng, idx, 5, 120 + 40 * (idx % 4));
    }
    for idx in 0..9 {
        push(rng, idx, 10, 150 + 50 * (idx % 3));
    }
    for idx in 0..8 {
        push(rng, idx, 15, 200 + 50 * (idx % 2));
    }
    push(rng, 0, 50, 300);
    out
}

/// A reduced suite for quick runs: a handful of 5/10/15-region networks.
pub fn quick_suite<R: Rng + ?Sized>(rng: &mut R, per_size: usize) -> Vec<Dataset> {
    let mut out = Vec::new();
    for (size, len) in [(5usize, 150usize), (10, 180), (15, 220)] {
        for idx in 0..per_size {
            let mut d = generate(rng, FmriConfig::netsim_like(size, len));
            d.name = format!("fmri-{size}-{idx:02}");
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hrf_is_biphasic_and_peak_normalised() {
        let h = hrf(20);
        assert_eq!(h.len(), 20);
        let peak = h.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((peak - 1.0).abs() < 1e-12);
        // Early positive lobe peaking near t≈5, undershoot near t≈15.
        assert!(h[5] > 0.5, "peak around t≈5, got {}", h[5]);
        assert!(h[15] < 0.0, "undershoot expected near t≈15, got {}", h[15]);
        assert_eq!(h[0], 0.0);
    }

    #[test]
    fn generated_network_is_stable_and_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = generate(
            &mut rng,
            FmriConfig {
                n_nodes: 10,
                length: 300,
                ..Default::default()
            },
        );
        assert_eq!(d.series.shape(), &[10, 300]);
        assert!(d.series.all_finite());
        assert!(d.series.abs().max() < 100.0, "dynamics exploded");
    }

    #[test]
    fn truth_has_self_loops_and_at_least_one_relation() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&mut rng, FmriConfig::default());
        for i in 0..d.num_series() {
            assert!(d.truth.has_edge(i, i));
        }
        assert!(d.truth.non_self_edges().count() >= 1);
        // fMRI ground truth carries no delays (paper Table 2 omits it).
        for e in d.truth.edges() {
            assert_eq!(e.delay, None);
        }
    }

    #[test]
    fn suite_matches_paper_inventory() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = suite(&mut rng);
        assert_eq!(s.len(), 28);
        let count = |n: usize| s.iter().filter(|d| d.num_series() == n).count();
        assert_eq!(count(5), 10);
        assert_eq!(count(10), 9);
        assert_eq!(count(15), 8);
        assert_eq!(count(50), 1);
        // Unique names.
        let mut names: Vec<&str> = s.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn quick_suite_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = quick_suite(&mut rng, 2);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&mut StdRng::seed_from_u64(4), FmriConfig::default());
        let b = generate(&mut StdRng::seed_from_u64(4), FmriConfig::default());
        assert_eq!(a.series, b.series);
        assert_eq!(a.truth, b.truth);
    }
}
