//! # cf-data
//!
//! Dataset generators for the CausalFormer reproduction — every dataset of
//! the paper's §5.1, with exact ground-truth causal graphs:
//!
//! * [`synthetic`] — the four basic causal structures (diamond, mediator,
//!   v-structure, fork) as non-linear structural equation models with
//!   standard-normal additive noise (paper Fig. 7).
//! * [`lorenz96`] — the Lorenz-96 climate model integrated with RK4
//!   (paper Eq. 21), `N = 10`, `F ∈ [30, 40]`.
//! * [`fmri_sim`] — NetSim-style simulated BOLD: a random stable causal
//!   network drives linear latent dynamics, convolved with a double-gamma
//!   hemodynamic response function and observed with noise. This replaces
//!   the Smith et al. fMRI benchmark (real data we cannot redistribute)
//!   with the same generative recipe — NetSim itself is simulated BOLD.
//! * [`sst_sim`] — a sea-surface-temperature advection lattice with a
//!   prescribed gyre-like current field, replacing the NOAA OI-SST case
//!   study (paper §5.6) with a setting where the "ocean currents" the
//!   discovered causality must align with are known exactly.
//!
//! Every generator returns a [`Dataset`]: an `N×L` series matrix plus the
//! ground-truth [`CausalGraph`]. The [`window`] module turns a dataset into
//! standardised training windows.

// Numeric kernels in this workspace use explicit index loops on purpose:
// the indices mirror the paper's subscripts (i, j, t, τ, u) and several
// co-indexed buffers are updated per iteration, which iterator chains
// would obscure.
#![allow(clippy::needless_range_loop)]

pub mod fmri_sim;
pub mod henon;
pub mod io;
pub mod lorenz96;
pub mod random_var;
pub mod sst_sim;
pub mod synthetic;
pub mod window;

use cf_metrics::CausalGraph;
use cf_tensor::Tensor;

/// A generated benchmark: `N` series of length `L` plus ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"diamond"` or `"fmri-15-03"`.
    pub name: String,
    /// `N×L` series matrix (row = series).
    pub series: Tensor,
    /// Ground-truth causal graph with delay annotations where defined.
    pub truth: CausalGraph,
}

impl Dataset {
    /// Number of time series.
    pub fn num_series(&self) -> usize {
        self.series.shape()[0]
    }

    /// Length of each series.
    pub fn len(&self) -> usize {
        self.series.shape()[1]
    }

    /// `true` iff the dataset holds no observations (never, by
    /// construction — provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }
}
