//! Random sparse VAR processes over Erdős–Rényi causal graphs — the
//! standard scalability benchmark for temporal causal discovery (used by
//! DYNOTEARS, CUTS, and the neural-Granger literature the paper builds
//! on). Unlike the four fixed structures of `synthetic`, this generator
//! scales to arbitrary `N`, which powers the `scaling` experiment binary.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration of the random VAR generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomVarConfig {
    /// Number of series.
    pub n: usize,
    /// Series length.
    pub length: usize,
    /// Probability of a directed edge between two distinct series.
    pub density: f64,
    /// Maximum causal lag (each edge draws a lag in `1..=max_lag`).
    pub max_lag: usize,
    /// AR(1) self-coefficient.
    pub self_coeff: f64,
    /// Magnitude range of edge coefficients.
    pub coeff_range: (f64, f64),
    /// Innovation noise standard deviation.
    pub noise: f64,
}

impl Default for RandomVarConfig {
    fn default() -> Self {
        Self {
            n: 10,
            length: 500,
            density: 0.1,
            max_lag: 3,
            self_coeff: 0.3,
            coeff_range: (0.3, 0.6),
            noise: 1.0,
        }
    }
}

/// Generates a random sparse VAR dataset with exact ground truth.
///
/// Stability: total incoming coefficient magnitude per series is rescaled
/// to at most 0.9, so the process cannot explode regardless of the drawn
/// graph.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: RandomVarConfig) -> Dataset {
    assert!(config.n >= 2, "need at least two series");
    assert!(config.length > 10 * config.max_lag, "series too short");
    assert!((0.0..=1.0).contains(&config.density), "density in [0,1]");
    assert!(config.max_lag >= 1);

    let n = config.n;
    // Draw edges: (from, to, lag, coeff).
    let mut edges: Vec<(usize, usize, usize, f64)> = Vec::new();
    for from in 0..n {
        for to in 0..n {
            if from != to && rng.gen_bool(config.density) {
                let lag = rng.gen_range(1..=config.max_lag);
                let sign = if rng.gen_bool(0.7) { 1.0 } else { -1.0 };
                let mag = rng.gen_range(config.coeff_range.0..config.coeff_range.1);
                edges.push((from, to, lag, sign * mag));
            }
        }
    }

    // Stabilise: per target, cap Σ|coeff| (incl. self) at 0.9.
    let mut incoming = vec![config.self_coeff.abs(); n];
    for &(_, to, _, c) in &edges {
        incoming[to] += c.abs();
    }
    for &mut (_, to, _, ref mut c) in &mut edges {
        if incoming[to] > 0.9 {
            *c *= 0.9 / incoming[to];
        }
    }

    let mut truth = CausalGraph::new(n);
    for i in 0..n {
        truth.add_edge(i, i, Some(1));
    }
    for &(from, to, lag, _) in &edges {
        truth.add_edge(from, to, Some(lag));
    }

    // Simulate.
    let burn = 10 * config.max_lag;
    let total = burn + config.length;
    let noise_dist = Normal::new(0.0, config.noise).expect("valid normal");
    let mut x = vec![vec![0.0f64; n]; total];
    for t in 1..total {
        for i in 0..n {
            let mut v = noise_dist.sample(rng) + config.self_coeff * x[t - 1][i];
            for &(from, to, lag, c) in &edges {
                if to == i && t >= lag {
                    v += c * x[t - lag][from];
                }
            }
            x[t][i] = v;
        }
    }

    let mut data = Vec::with_capacity(n * config.length);
    for i in 0..n {
        for t in 0..config.length {
            data.push(x[burn + t][i]);
        }
    }
    Dataset {
        name: format!("var-n{n}-d{:.2}", config.density),
        series: Tensor::from_vec(vec![n, config.length], data).expect("consistent"),
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_truth_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = generate(&mut rng, RandomVarConfig::default());
        assert_eq!(d.series.shape(), &[10, 500]);
        // Self loops always present.
        for i in 0..10 {
            assert!(d.truth.has_edge(i, i));
        }
        assert!(d.series.all_finite());
    }

    #[test]
    fn process_is_stable_even_at_high_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(
            &mut rng,
            RandomVarConfig {
                density: 0.5,
                n: 20,
                ..Default::default()
            },
        );
        assert!(
            d.series.abs().max() < 100.0,
            "VAR exploded: max |x| = {}",
            d.series.abs().max()
        );
    }

    #[test]
    fn density_controls_edge_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let sparse = generate(
            &mut rng,
            RandomVarConfig {
                density: 0.05,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let dense = generate(
            &mut rng,
            RandomVarConfig {
                density: 0.4,
                ..Default::default()
            },
        );
        assert!(dense.truth.non_self_edges().count() > sparse.truth.non_self_edges().count());
    }

    #[test]
    fn lags_respect_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(
            &mut rng,
            RandomVarConfig {
                max_lag: 2,
                density: 0.3,
                ..Default::default()
            },
        );
        for e in d.truth.edges() {
            let lag = e.delay.expect("VAR truth has lags");
            assert!((1..=2).contains(&lag));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&mut StdRng::seed_from_u64(4), RandomVarConfig::default());
        let b = generate(&mut StdRng::seed_from_u64(4), RandomVarConfig::default());
        assert_eq!(a.series, b.series);
        assert_eq!(a.truth, b.truth);
    }
}
