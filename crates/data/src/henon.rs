//! Unidirectionally coupled Hénon maps — a classic *nonlinear* causality
//! benchmark (widely used in the nonlinear-Granger literature the paper's
//! §2.1 cites [15, 20]). Complements the near-linear `synthetic`
//! structures: here the coupling is quadratic, which linear VAR-Granger
//! cannot represent, so this dataset separates genuinely nonlinear methods
//! from linear ones.
//!
//! Chain topology `x₀ → x₁ → … → x_{K−1}` of Hénon maps:
//!
//! ```text
//! x_k[t+1] = 1.4 − u_k[t]² + 0.3·x_k[t−1]
//! u_k[t]   = c·x_{k−1}[t] + (1−c)·x_k[t]   (u₀ = x₀: the driver is free)
//! ```
//!
//! with coupling strength `c ∈ [0, 1]`. At `c = 0` the maps are
//! independent; identifiability degrades near complete synchronisation
//! (`c ≳ 0.7`), so the default keeps `c = 0.4`.

use crate::Dataset;
use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration of the coupled Hénon chain.
#[derive(Debug, Clone, Copy)]
pub struct HenonConfig {
    /// Number of maps in the chain.
    pub n: usize,
    /// Recorded length.
    pub length: usize,
    /// Coupling strength `c ∈ [0, 1)`.
    pub coupling: f64,
    /// Observation noise standard deviation.
    pub obs_noise: f64,
}

impl Default for HenonConfig {
    fn default() -> Self {
        Self {
            n: 4,
            length: 600,
            coupling: 0.4,
            obs_noise: 0.05,
        }
    }
}

/// Generates a coupled Hénon chain dataset with exact ground truth
/// (each map causes its successor at lag 1, plus self-dynamics at lag 1–2).
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: HenonConfig) -> Dataset {
    assert!(config.n >= 2, "chain needs at least two maps");
    assert!((0.0..1.0).contains(&config.coupling), "coupling in [0,1)");
    assert!(config.length > 50, "series too short");
    let n = config.n;
    let c = config.coupling;
    let noise = Normal::new(0.0, config.obs_noise).expect("valid normal");

    let burn = 200;
    let total = burn + config.length;
    // State per map: (x[t], x[t−1]).
    let mut x = vec![vec![0.0f64; n]; total];
    for k in 0..n {
        x[0][k] = rng.gen_range(-0.1..0.1);
        x[1][k] = rng.gen_range(-0.1..0.1);
    }
    for t in 1..total - 1 {
        for k in 0..n {
            let u = if k == 0 {
                x[t][0]
            } else {
                c * x[t][k - 1] + (1.0 - c) * x[t][k]
            };
            let mut next = 1.4 - u * u + 0.3 * x[t - 1][k];
            // Keep the orbit inside the attractor basin under noise.
            next = next.clamp(-5.0, 5.0);
            x[t + 1][k] = next;
        }
    }

    let mut truth = CausalGraph::new(n);
    for k in 0..n {
        truth.add_edge(k, k, Some(1));
        if k > 0 {
            truth.add_edge(k - 1, k, Some(1));
        }
    }

    let mut data = Vec::with_capacity(n * config.length);
    for k in 0..n {
        for t in 0..config.length {
            data.push(x[burn + t][k] + noise.sample(rng));
        }
    }
    Dataset {
        name: format!("henon-{n}-c{:.1}", c),
        series: Tensor::from_vec(vec![n, config.length], data).expect("consistent"),
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orbit_stays_on_attractor() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = generate(&mut rng, HenonConfig::default());
        assert_eq!(d.series.shape(), &[4, 600]);
        assert!(d.series.all_finite());
        // Hénon attractor lives roughly in [−1.5, 1.5].
        assert!(d.series.abs().max() < 3.0, "max {}", d.series.abs().max());
    }

    #[test]
    fn chain_truth_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(
            &mut rng,
            HenonConfig {
                n: 5,
                ..Default::default()
            },
        );
        assert_eq!(d.truth.num_edges(), 5 + 4); // self + chain
        assert!(d.truth.has_edge(0, 1));
        assert!(!d.truth.has_edge(1, 0));
        assert!(!d.truth.has_edge(0, 2)); // no skip links
    }

    #[test]
    fn dynamics_are_chaotic_not_periodic() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(&mut rng, HenonConfig::default());
        let row = d.series.row(0);
        // Chaotic Hénon: autocorrelation at lag 1 is clearly below 1 and
        // the series has substantial variance.
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / row.len() as f64;
        assert!(var > 0.1, "variance {var}");
    }

    #[test]
    fn zero_coupling_decouples_the_chain() {
        // With c = 0, series k is unaffected by series k−1: regenerate with
        // the same seed but different driver noise? Instead verify via the
        // dynamics directly: two chains with different initial conditions
        // in map 0 but identical in map 1 produce identical map-1 series
        // when c = 0.
        let config = HenonConfig {
            coupling: 0.0,
            obs_noise: 0.0,
            ..Default::default()
        };
        let a = generate(&mut StdRng::seed_from_u64(3), config);
        let b = generate(&mut StdRng::seed_from_u64(4), config);
        // Map dynamics are deterministic after the random init; with c=0
        // each map only depends on its own init. Different seeds → different
        // inits → different series, but the *coupled* influence is absent:
        // check the cross-correlation between consecutive maps is weak.
        let corr = |x: &[f64], y: &[f64]| -> f64 {
            let n = x.len() - 1;
            let mx = x[..n].iter().sum::<f64>() / n as f64;
            let my = y[1..].iter().sum::<f64>() / n as f64;
            let mut num = 0.0;
            let mut dx = 0.0;
            let mut dy = 0.0;
            for t in 0..n {
                num += (x[t] - mx) * (y[t + 1] - my);
                dx += (x[t] - mx).powi(2);
                dy += (y[t + 1] - my).powi(2);
            }
            (num / (dx.sqrt() * dy.sqrt())).abs()
        };
        let decoupled = corr(a.series.row(0), a.series.row(1));
        let mut rng = StdRng::seed_from_u64(3);
        let coupled = generate(
            &mut rng,
            HenonConfig {
                coupling: 0.6,
                obs_noise: 0.0,
                ..Default::default()
            },
        );
        let strong = corr(coupled.series.row(0), coupled.series.row(1));
        assert!(
            strong > decoupled,
            "coupled correlation {strong} should exceed decoupled {decoupled}"
        );
        drop(b);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&mut StdRng::seed_from_u64(5), HenonConfig::default());
        let b = generate(&mut StdRng::seed_from_u64(5), HenonConfig::default());
        assert_eq!(a.series, b.series);
    }
}
