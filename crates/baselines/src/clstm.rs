//! cLSTM — component-wise LSTM neural Granger causality (Tank et al. [31]).
//!
//! One LSTM per target series consumes all `N` series as input features and
//! predicts the target one step ahead. A group penalty over the *columns*
//! of the input projections (one group per source series, across all four
//! gates) shrinks non-causal inputs; series `i` Granger-causes the target
//! iff its input-weight group survives. Like the original — and like the
//! paper's Table 2, which omits cLSTM — the method does not output delays:
//! the recurrent state mixes all past lags.
//!
//! As with [`Cmlp`](crate::Cmlp), the group penalty is applied as a
//! proximal shrinkage step after each Adam update, and survivors are
//! selected by k-means on the group norms.

use crate::common::standardize;
use crate::sweep_cache::{fingerprint_payload, SweepCache};
use crate::Discoverer;
use cf_metrics::kmeans::top_class_mask;
use cf_metrics::CausalGraph;
use cf_nn::{Adam, Linear, LstmCell, Optimizer, ParamStore};
use cf_tensor::{with_pooled_tape, Tensor};
use rand::RngCore;
use std::path::Path;

/// Minimum estimated per-target training FLOPs (MACs through the four gate
/// projections, forward only) before the per-target sweep is dispatched to
/// the worker pool. Below this, pool dispatch plus thread contention on
/// small hosts outweighs any overlap — the sweep runs on the calling
/// thread, producing bitwise-identical weights either way.
const CLSTM_PAR_WORK_THRESHOLD: usize = 64 * 1024 * 1024;

/// Hyper-parameters of the cLSTM baseline.
#[derive(Debug, Clone, Copy)]
pub struct ClstmConfig {
    /// LSTM hidden width.
    pub hidden: usize,
    /// BPTT sequence length.
    pub seq_len: usize,
    /// Stride between training sequences.
    pub stride: usize,
    /// Group-penalty coefficient on the input projections.
    pub lambda: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for ClstmConfig {
    fn default() -> Self {
        Self {
            hidden: 12,
            seq_len: 12,
            stride: 6,
            lambda: 3e-3,
            epochs: 30,
            lr: 2e-2,
        }
    }
}

/// The cLSTM discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Clstm {
    /// Hyper-parameters.
    pub config: ClstmConfig,
}

impl Clstm {
    /// A cLSTM with the given configuration.
    pub fn new(config: ClstmConfig) -> Self {
        Self { config }
    }

    /// [`Discoverer::discover`] with per-target checkpointing under `dir`:
    /// the four trained gate input-projection matrices of each finished
    /// target are persisted, and a restarted sweep skips those targets. The
    /// resulting graph is bitwise identical to an uninterrupted
    /// [`discover`] call with the same rng seed (see
    /// [`crate::sweep_cache`]).
    ///
    /// [`discover`]: Discoverer::discover
    pub fn discover_resumable(
        &self,
        rng: &mut dyn RngCore,
        series: &Tensor,
        dir: &Path,
    ) -> std::io::Result<CausalGraph> {
        let payload = fingerprint_payload(&format!("{:?}", self.config), series);
        let cache = SweepCache::open(dir, "cLSTM", &payload)?;
        Ok(self.discover_impl(rng, series, Some(&cache)))
    }
}

impl Discoverer for Clstm {
    fn name(&self) -> &'static str {
        "cLSTM"
    }

    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        self.discover_impl(rng, series, None)
    }
}

impl Clstm {
    fn discover_impl(
        &self,
        rng: &mut dyn RngCore,
        series: &Tensor,
        cache: Option<&SweepCache>,
    ) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let l = series.shape()[1];
        assert!(l > cfg.seq_len + 1, "series too short for BPTT window");
        let std_series = standardize(series);

        // Sequence start offsets (each sequence predicts seq_len steps).
        let starts: Vec<usize> = (0..l - cfg.seq_len - 1).step_by(cfg.stride).collect();

        // Same three-phase split as cMLP: sequential rng-consuming init,
        // parallel rng-free BPTT training, sequential rng-consuming edge
        // selection — graph output is identical at any thread count.
        struct TargetState {
            store: ParamStore,
            cell: LstmCell,
            head: Linear,
            target: usize,
        }

        // Phase A: sequential init (consumes rng).
        let mut states: Vec<TargetState> = (0..n)
            .map(|target| {
                let mut store = ParamStore::new();
                let cell = LstmCell::new(&mut store, rng, "lstm", n, cfg.hidden);
                let head = Linear::xavier(&mut store, rng, "head", cfg.hidden, 1, true);
                TargetState {
                    store,
                    cell,
                    head,
                    target,
                }
            })
            .collect();

        // Resume: restore already-trained gate input projections from the
        // sweep cache (sequentially). Phase C's group norms read only
        // these four matrices, so nothing else needs restoring.
        let gate_names = ["wx0", "wx1", "wx2", "wx3"];
        let restored: Vec<bool> = if let Some(c) = cache {
            states
                .iter_mut()
                .enumerate()
                .map(|(t, st)| {
                    let Some(arts) = c.load(t) else {
                        return false;
                    };
                    let ids = st.cell.input_weights();
                    let ok = arts.len() == ids.len()
                        && arts.iter().zip(&ids).zip(&gate_names).all(
                            |(((name, w), &id), &expect)| {
                                name == expect && w.shape() == st.store.value(id).shape()
                            },
                        );
                    if !ok {
                        return false;
                    }
                    for ((_, w), &id) in arts.into_iter().zip(&ids) {
                        *st.store.value_mut(id) = w;
                    }
                    true
                })
                .collect()
        } else {
            vec![false; n]
        };

        // Phase B: parallel rng-free training (restored targets skip it).
        let train_target = |idx: usize, st: &mut TargetState| {
            if restored[idx] {
                cf_obs::heartbeat::progress_inc("baseline.clstm.target", n as u64);
                return;
            }
            let target = st.target;
            let (store, cell, head) = (&mut st.store, &st.cell, &st.head);
            let mut adam = Adam::new(cfg.lr);

            for _ in 0..cfg.epochs {
                with_pooled_tape(|tape| {
                    let bound = store.bind(tape);
                    let mut loss_acc: Option<cf_tensor::VarId> = None;
                    let mut count = 0usize;
                    for &start in &starts {
                        let mut state = cell.zero_state(tape, 1);
                        for step in 0..cfg.seq_len {
                            let t = start + step;
                            let x_t = Tensor::from_vec(
                                vec![1, n],
                                (0..n).map(|i| std_series.get2(i, t)).collect(),
                            )
                            .expect("consistent");
                            let xv = tape.constant(x_t);
                            state = cell.step(tape, &bound, xv, state);
                            let pred = head.forward(tape, &bound, state.h);
                            let tgt = tape.constant(
                                Tensor::from_vec(vec![1, 1], vec![std_series.get2(target, t + 1)])
                                    .expect("consistent"),
                            );
                            let diff = tape.sub(pred, tgt);
                            let sq = tape.square(diff);
                            let term = tape.sum_all(sq);
                            loss_acc = Some(match loss_acc {
                                None => term,
                                Some(acc) => tape.add(acc, term),
                            });
                            count += 1;
                        }
                    }
                    let sum = loss_acc.expect("at least one sequence");
                    let loss = tape.scale(sum, 1.0 / count as f64);
                    let grads = tape.backward(loss);
                    adam.step(store, &bound, &grads);
                });

                // Proximal group shrinkage over input columns (rows of W_x,
                // which is input_dim×hidden — one row per source series)
                // jointly across the four gates.
                let thresh = cfg.lr * cfg.lambda;
                let norms = input_group_norms(store, cell, n);
                for (i, &norm) in norms.iter().enumerate() {
                    let factor = if norm > thresh {
                        1.0 - thresh / norm
                    } else {
                        0.0
                    };
                    for wx in cell.input_weights() {
                        let w = store.value_mut(wx);
                        let h = w.shape()[1];
                        for c in 0..h {
                            let v = w.get2(i, c);
                            w.set2(i, c, v * factor);
                        }
                    }
                }
            }
            // Per-target heartbeat tick: covers both the serial and the
            // fanned-out path, since both go through this closure.
            cf_obs::heartbeat::progress_inc("baseline.clstm.target", n as u64);
        };
        // Each target trains independently and consumes no rng, so the
        // serial and parallel paths produce bitwise-identical weights —
        // pick by per-target work size. Small models (BENCH_PR2: Fork
        // cLSTM 0.40s@1T → 0.49s@4T) lose more to pool dispatch and
        // thread contention than they gain, so they stay on this thread.
        let per_target_flops = cfg.epochs
            * starts.len()
            * cfg.seq_len
            * 4 // gates
            * (n + cfg.hidden)
            * cfg.hidden;
        // The heartbeat unit opens at 0/n from serial code so repeated
        // sweeps in one process restart the bar.
        cf_obs::heartbeat::progress("baseline.clstm.target", 0, n as u64);
        if !cf_par::should_fan_out(per_target_flops as u64, CLSTM_PAR_WORK_THRESHOLD as u64) {
            for (idx, st) in states.iter_mut().enumerate() {
                train_target(idx, st);
            }
        } else {
            cf_par::par_each_mut(&mut states, train_target);
        }

        // Checkpoint each freshly trained target (sequential writes).
        if let Some(c) = cache {
            for (t, st) in states.iter().enumerate() {
                if !restored[t] {
                    let ids = st.cell.input_weights();
                    let tensors: Vec<(&str, &Tensor)> = gate_names
                        .iter()
                        .zip(&ids)
                        .map(|(&name, &id)| (name, st.store.value(id)))
                        .collect();
                    c.store(t, &tensors);
                }
            }
        }

        // Phase C: sequential edge selection (consumes rng).
        let mut graph = CausalGraph::new(n);
        for st in &states {
            let scores = input_group_norms(&st.store, &st.cell, n);
            let mask = top_class_mask(rng, &scores, 2, 1);
            for (i, &selected) in mask.iter().enumerate() {
                if selected {
                    graph.add_edge(i, st.target, None);
                }
            }
        }
        graph
    }
}

/// Joint L2 norm, per source series, of that series' rows across the four
/// gate input-projection matrices.
fn input_group_norms(store: &ParamStore, cell: &LstmCell, n: usize) -> Vec<f64> {
    let mut norms = vec![0.0f64; n];
    for wx in cell.input_weights() {
        let w = store.value(wx);
        let h = w.shape()[1];
        for (i, norm) in norms.iter_mut().enumerate() {
            for c in 0..h {
                let v = w.get2(i, c);
                *norm += v * v;
            }
        }
    }
    norms.into_iter().map(f64::sqrt).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_fork_better_than_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Fork, 300);
        let clstm = Clstm::new(ClstmConfig {
            epochs: 15,
            ..Default::default()
        });
        let g = clstm.discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.3, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn does_not_output_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::VStructure, 150);
        let clstm = Clstm::new(ClstmConfig {
            epochs: 3,
            ..Default::default()
        });
        assert!(!clstm.outputs_delays());
        let g = clstm.discover(&mut rng, &data.series);
        for e in g.edges() {
            assert_eq!(e.delay, None);
        }
    }
}
