//! Per-target artifact cache for the component-wise baseline sweeps.
//!
//! cMLP and cLSTM train one independent model per target series; a full
//! Table-1 sweep retrains every target from scratch, so a crash near the
//! end loses hours of work. This cache checkpoints each target's *causally
//! relevant* trained weights as soon as that target finishes, under the
//! same checksummed atomic-write envelope as the trainer's checkpoints
//! ([`causalformer::checkpoint::write_envelope`]). A restarted sweep skips
//! every cached target and — because per-target RNG consumption happens in
//! the sequential init and selection phases, which always run — produces a
//! **bitwise identical** causal graph to an uninterrupted run.
//!
//! Cache entries are keyed by target index and guarded by a fingerprint of
//! the method configuration and the input series: stale entries (different
//! data or hyper-parameters) and corrupt files are treated as misses and
//! retrained, never trusted.

use causalformer::checkpoint::{fnv1a64, read_envelope, write_envelope};
use cf_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One cached target: named weight tensors flattened for the vendored
/// serde derive (parallel `names`/`shapes`/`values` arrays).
#[derive(Serialize, Deserialize)]
struct SavedTarget {
    method: String,
    target: u64,
    fingerprint: String,
    names: Vec<String>,
    shapes: Vec<Vec<u64>>,
    values: Vec<Vec<f64>>,
}

/// A directory of per-target artifacts for one (method, config, series)
/// sweep. See the [module docs](self).
pub struct SweepCache {
    dir: PathBuf,
    method: &'static str,
    fingerprint: String,
}

impl SweepCache {
    /// Opens (creating if needed) the cache directory for a sweep whose
    /// identity is `method` plus a caller-built fingerprint payload
    /// (hyper-parameters and input series bits).
    pub fn open(
        dir: impl Into<PathBuf>,
        method: &'static str,
        fingerprint_payload: &[u8],
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            method,
            fingerprint: format!("{:016x}", fnv1a64(fingerprint_payload)),
        })
    }

    fn path(&self, target: usize) -> PathBuf {
        self.dir
            .join(format!("{}-target-{target:04}.cfck", self.method))
    }

    /// Loads the cached tensors for `target`, or `None` on any miss:
    /// absent file, corrupt envelope, undecodable payload, or a
    /// fingerprint from a different config/series. Misses are safe — the
    /// caller simply retrains the target.
    pub fn load(&self, target: usize) -> Option<Vec<(String, Tensor)>> {
        let path = self.path(target);
        if !path.exists() {
            return None;
        }
        let payload = match read_envelope(&path) {
            Ok(p) => p,
            Err(e) => {
                cf_obs::warn!("sweep cache: ignoring unreadable artifact: {e}");
                return None;
            }
        };
        let json = match std::str::from_utf8(&payload) {
            Ok(s) => s,
            Err(_) => {
                cf_obs::warn!(
                    "sweep cache: artifact {} is not UTF-8, retraining",
                    path.display()
                );
                return None;
            }
        };
        let saved: SavedTarget = match serde_json::from_str(json) {
            Ok(s) => s,
            Err(e) => {
                cf_obs::warn!(
                    "sweep cache: ignoring undecodable artifact {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        if saved.method != self.method
            || saved.target != target as u64
            || saved.fingerprint != self.fingerprint
        {
            cf_obs::warn!(
                "sweep cache: stale artifact {} (different config or series), retraining",
                path.display()
            );
            return None;
        }
        if saved.names.len() != saved.shapes.len() || saved.names.len() != saved.values.len() {
            cf_obs::warn!(
                "sweep cache: inconsistent artifact {}, retraining",
                path.display()
            );
            return None;
        }
        let mut out = Vec::with_capacity(saved.names.len());
        for ((name, shape), values) in saved.names.into_iter().zip(saved.shapes).zip(saved.values) {
            let shape: Vec<usize> = shape.into_iter().map(|d| d as usize).collect();
            match Tensor::from_vec(shape, values) {
                Ok(t) => out.push((name, t)),
                Err(e) => {
                    cf_obs::warn!(
                        "sweep cache: artifact {} has a malformed tensor ({e}), retraining",
                        path.display()
                    );
                    return None;
                }
            }
        }
        Some(out)
    }

    /// Persists `target`'s trained tensors. Best-effort like the trainer's
    /// epoch checkpoints: a failed write costs a retrain on resume, never
    /// the current sweep.
    pub fn store(&self, target: usize, tensors: &[(&str, &Tensor)]) {
        let saved = SavedTarget {
            method: self.method.to_string(),
            target: target as u64,
            fingerprint: self.fingerprint.clone(),
            names: tensors.iter().map(|(n, _)| n.to_string()).collect(),
            shapes: tensors
                .iter()
                .map(|(_, t)| t.shape().iter().map(|&d| d as u64).collect())
                .collect(),
            values: tensors.iter().map(|(_, t)| t.data().to_vec()).collect(),
        };
        let payload = match serde_json::to_string(&saved) {
            Ok(p) => p,
            Err(e) => {
                cf_obs::warn!("sweep cache: could not encode target {target}: {e}");
                return;
            }
        };
        if let Err(e) = write_envelope(&self.path(target), payload.as_bytes()) {
            cf_obs::warn!(
                "sweep cache: could not write {}: {e}",
                self.path(target).display()
            );
        }
    }
}

/// Fingerprint payload builder: method config debug string plus the exact
/// bit pattern of the input series. Any change to either retrains.
pub(crate) fn fingerprint_payload(config_repr: &str, series: &Tensor) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(config_repr.len() + series.data().len() * 8 + 16);
    bytes.extend_from_slice(config_repr.as_bytes());
    for &d in series.shape() {
        bytes.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in series.data() {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cf_sweep_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn series() -> Tensor {
        Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn roundtrips_tensors_bitwise() {
        let dir = tmp_dir("roundtrip");
        let fp = fingerprint_payload("cfg", &series());
        let cache = SweepCache::open(&dir, "test", &fp).unwrap();
        let w = Tensor::from_vec(vec![2, 2], vec![0.1, -0.2, f64::MIN_POSITIVE, 1e300]).unwrap();
        cache.store(3, &[("w", &w)]);
        let loaded = cache.load(3).expect("hit");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "w");
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&w), bits(&loaded[0].1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn different_fingerprint_misses() {
        let dir = tmp_dir("fp");
        let fp_a = fingerprint_payload("cfg-a", &series());
        let cache_a = SweepCache::open(&dir, "test", &fp_a).unwrap();
        let w = Tensor::from_vec(vec![1], vec![7.0]).unwrap();
        cache_a.store(0, &[("w", &w)]);

        let fp_b = fingerprint_payload("cfg-b", &series());
        let cache_b = SweepCache::open(&dir, "test", &fp_b).unwrap();
        assert!(cache_b.load(0).is_none(), "stale artifact must miss");
        assert!(cache_a.load(0).is_some(), "original keeps hitting");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_misses() {
        let dir = tmp_dir("corrupt");
        let fp = fingerprint_payload("cfg", &series());
        let cache = SweepCache::open(&dir, "test", &fp).unwrap();
        let w = Tensor::from_vec(vec![1], vec![7.0]).unwrap();
        cache.store(0, &[("w", &w)]);
        let path = dir.join("test-target-0000.cfck");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(0).is_none(), "corrupt artifact must miss");
        std::fs::remove_dir_all(&dir).ok();
    }
}
