//! # cf-baselines
//!
//! The five baseline temporal causal discovery methods of the paper's
//! Table 1, re-implemented from scratch on the `cf-tensor`/`cf-nn`
//! substrate:
//!
//! * [`Cmlp`] — component-wise MLP neural Granger causality (Tank et al.
//!   [31]): one MLP per target over lagged inputs, group-sparse penalty on
//!   the input layer; causal scores are input-group norms, delays come from
//!   the strongest lag group.
//! * [`Clstm`] — component-wise LSTM neural Granger causality [31]: one
//!   LSTM per target, group-sparse penalty on the input projections; no
//!   delay output (matching the paper's Table 2, which omits cLSTM).
//! * [`Tcdf`] — the Temporal Causal Discovery Framework (Nauta et al.
//!   [10]): attention-gated causal convolutions per target; causes are
//!   selected with TCDF's largest-gap rule on sorted attention scores and
//!   delays read from the convolution kernels.
//! * [`Dvgnn`] — DVGNN-lite [49]: a learned dense adjacency (edge
//!   probabilities) driving a two-lag graph predictor; the paper applies
//!   k-means to its edge scores, as do we. No delay output.
//! * [`Cuts`] — CUTS-lite [50]: per-edge multiplicative gates on lagged
//!   inputs of per-target MLPs with a sparsity penalty; k-means on the
//!   learned gates. No delay output.
//!
//! The `-lite` qualifiers are deliberate and documented in DESIGN.md §2:
//! each re-implementation keeps the component that *produces the causal
//! scores* and drops machinery that does not bind on our regular,
//! fully-observed benchmark data (DVGNN's diffusion decoder, CUTS's
//! missing-data imputation).
//!
//! All methods implement [`Discoverer`], the common interface the
//! experiment harness fans out over.

// Numeric kernels in this workspace use explicit index loops on purpose:
// the indices mirror the paper's subscripts (i, j, t, τ, u) and several
// co-indexed buffers are updated per iteration, which iterator chains
// would obscure.
#![allow(clippy::needless_range_loop)]

mod clstm;
mod cmlp;
mod common;
mod cuts;
mod dvgnn;
mod dynotears;
mod pcmci_lite;
pub mod sweep_cache;
mod tcdf;
mod var_granger;

pub use clstm::{Clstm, ClstmConfig};
pub use cmlp::{Cmlp, CmlpConfig};
pub use common::largest_gap_threshold;
pub use cuts::{Cuts, CutsConfig};
pub use dvgnn::{Dvgnn, DvgnnConfig};
pub use dynotears::{Dynotears, DynotearsConfig};
pub use pcmci_lite::{Pcmci, PcmciConfig};
pub use sweep_cache::SweepCache;
pub use tcdf::{Tcdf, TcdfConfig};
pub use var_granger::{VarGranger, VarGrangerConfig};

use cf_metrics::CausalGraph;
use cf_tensor::Tensor;
use rand::RngCore;

/// A temporal causal discovery method: series in, causal graph out.
///
/// Takes `&mut dyn RngCore` (rather than a generic) so heterogeneous method
/// collections can be iterated by the experiment harness.
pub trait Discoverer {
    /// Short method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Discovers the causal graph of an `N×L` series matrix.
    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph;

    /// Whether the method annotates edges with causal delays (Table 2 only
    /// compares methods that do).
    fn outputs_delays(&self) -> bool {
        false
    }
}
