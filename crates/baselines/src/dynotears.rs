//! DYNOTEARS-lite — score-based structure learning from time series
//! (Pamfil et al. [30], referenced in the paper's §2.1).
//!
//! DYNOTEARS learns per-lag weighted adjacency matrices `W^τ` by
//! minimising the one-step prediction error with L1 sparsity; the
//! acyclicity (NOTEARS) penalty applies only to the *intra-slice*
//! (instantaneous) matrix. This `-lite` version learns lagged matrices
//! only — inter-slice edges cannot form cycles, so no acyclicity machinery
//! is needed — which matches our benchmarks, where instantaneous edges are
//! rare. Trained with the workspace autodiff tape and Adam; edges are the
//! top k-means class of `max_τ |W^τ_{i,j}|` and the delay is the argmax τ.

use crate::common::standardize;
use crate::Discoverer;
use cf_metrics::kmeans::top_class_mask;
use cf_metrics::CausalGraph;
use cf_nn::{Adam, Optimizer, ParamStore};
use cf_tensor::{with_pooled_tape, Tensor};
use rand::RngCore;

/// Hyper-parameters of the DYNOTEARS-lite baseline.
#[derive(Debug, Clone, Copy)]
pub struct DynotearsConfig {
    /// Maximum lag (number of `W^τ` matrices).
    pub lag: usize,
    /// L1 sparsity coefficient.
    pub lambda: f64,
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for DynotearsConfig {
    fn default() -> Self {
        Self {
            lag: 4,
            lambda: 5e-3,
            epochs: 300,
            lr: 2e-2,
        }
    }
}

/// The DYNOTEARS-lite discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dynotears {
    /// Hyper-parameters.
    pub config: DynotearsConfig,
}

impl Dynotears {
    /// A DYNOTEARS-lite with the given configuration.
    pub fn new(config: DynotearsConfig) -> Self {
        Self { config }
    }
}

impl Discoverer for Dynotears {
    fn name(&self) -> &'static str {
        "DYNOTEARS"
    }

    fn outputs_delays(&self) -> bool {
        true
    }

    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let l = series.shape()[1];
        assert!(l > cfg.lag + 2, "series too short for lag {}", cfg.lag);
        let std_series = standardize(series);

        // Lagged design per τ: X_τ ∈ R^{S×N} with rows x[·, t−τ].
        let s = l - cfg.lag;
        let mut x_lags = Vec::with_capacity(cfg.lag);
        for tau in 1..=cfg.lag {
            let mut x = Tensor::zeros(&[s, n]);
            for sample in 0..s {
                let t = sample + cfg.lag;
                for i in 0..n {
                    x.set2(sample, i, std_series.get2(i, t - tau));
                }
            }
            x_lags.push(x);
        }
        let mut y = Tensor::zeros(&[s, n]);
        for sample in 0..s {
            let t = sample + cfg.lag;
            for i in 0..n {
                y.set2(sample, i, std_series.get2(i, t));
            }
        }

        let mut store = ParamStore::new();
        let w_ids: Vec<_> = (0..cfg.lag)
            .map(|tau| store.register(format!("w{tau}"), Tensor::zeros(&[n, n])))
            .collect();
        let mut adam = Adam::new(cfg.lr);

        for _ in 0..cfg.epochs {
            with_pooled_tape(|tape| {
                let bound = store.bind(tape);
                let mut pred = None;
                for (tau, &wid) in w_ids.iter().enumerate() {
                    let x = tape.constant(x_lags[tau].clone());
                    let term = tape.matmul(x, bound.var(wid));
                    pred = Some(match pred {
                        None => term,
                        Some(acc) => tape.add(acc, term),
                    });
                }
                let pred = pred.expect("lag ≥ 1");
                let yv = tape.constant(y.clone());
                let diff = tape.sub(pred, yv);
                let sq = tape.square(diff);
                let mse = tape.mean_all(sq);
                let mut loss = mse;
                for &wid in &w_ids {
                    let l1 = tape.l1(bound.var(wid));
                    let pen = tape.scale(l1, cfg.lambda);
                    loss = tape.add(loss, pen);
                }
                let grads = tape.backward(loss);
                adam.step(&mut store, &bound, &grads);
            });
        }

        // Edge scores: max over lags of |W^τ[i,j]|; delay = argmax τ.
        let mut graph = CausalGraph::new(n);
        for target in 0..n {
            let mut scores = vec![0.0f64; n];
            let mut delays = vec![1usize; n];
            for cause in 0..n {
                for (tau, &wid) in w_ids.iter().enumerate() {
                    let v = store.value(wid).get2(cause, target).abs();
                    if v > scores[cause] {
                        scores[cause] = v;
                        delays[cause] = tau + 1;
                    }
                }
            }
            let mask = top_class_mask(rng, &scores, 2, 1);
            for (cause, &selected) in mask.iter().enumerate() {
                if selected {
                    graph.add_edge(cause, target, Some(delays[cause]));
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_diamond_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Diamond, 800);
        let g = Dynotears::default().discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.6, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn l1_shrinks_spurious_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::Fork, 600);
        let sparse = Dynotears::new(DynotearsConfig {
            lambda: 2e-2,
            ..Default::default()
        })
        .discover(&mut rng, &data.series);
        let c = score::confusion(&data.truth, &sparse);
        assert!(
            c.precision() >= 0.6,
            "precision {}: {sparse}",
            c.precision()
        );
    }

    #[test]
    fn delays_are_within_lag_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(&mut rng, Structure::Mediator, 500);
        let g = Dynotears::default().discover(&mut rng, &data.series);
        for e in g.edges() {
            let d = e.delay.expect("DYNOTEARS annotates delays");
            assert!((1..=4).contains(&d));
        }
    }
}
