//! cMLP — component-wise MLP neural Granger causality (Tank et al. [31]).
//!
//! One MLP per target series predicts `x_j[t]` from the lagged values of
//! *all* series. A group-sparse penalty on the input layer (one group per
//! source series) drives non-causal input groups toward zero; series `i`
//! Granger-causes `j` iff its group norm survives. The delay of a
//! discovered relation is the lag whose input row carries the largest norm
//! (cMLP's hierarchical variant penalises longer lags more; we reproduce
//! the base group-lasso variant and obtain delays by per-lag attribution).
//!
//! The group-lasso is optimised with proximal steps after each Adam update
//! (the original uses proximal gradient descent / ISTA); surviving groups
//! are selected by k-means on the group norms, which reduces to a non-zero
//! check when the proximal operator has zeroed the rest.

use crate::common::{group_norm, lag_norm, lagged_design, standardize};
use crate::sweep_cache::{fingerprint_payload, SweepCache};
use crate::Discoverer;
use cf_metrics::kmeans::top_class_mask;
use cf_metrics::CausalGraph;
use cf_nn::{Adam, Linear, Optimizer, ParamStore};
use cf_tensor::{with_pooled_tape, Tensor};
use rand::RngCore;
use std::path::Path;

/// Hyper-parameters of the cMLP baseline.
#[derive(Debug, Clone, Copy)]
pub struct CmlpConfig {
    /// Maximum lag considered.
    pub lag: usize,
    /// Hidden width of each per-target MLP.
    pub hidden: usize,
    /// Group-lasso coefficient on the input layer.
    pub lambda: f64,
    /// Training epochs (full-batch Adam).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for CmlpConfig {
    fn default() -> Self {
        Self {
            lag: 4,
            hidden: 16,
            lambda: 5e-3,
            epochs: 150,
            lr: 2e-2,
        }
    }
}

/// The cMLP discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cmlp {
    /// Hyper-parameters.
    pub config: CmlpConfig,
}

impl Cmlp {
    /// A cMLP with the given configuration.
    pub fn new(config: CmlpConfig) -> Self {
        Self { config }
    }

    /// [`Discoverer::discover`] with per-target checkpointing under `dir`:
    /// each target's trained input layer is persisted as it finishes, and a
    /// restarted sweep skips every already-trained target. The resulting
    /// graph is bitwise identical to an uninterrupted [`discover`] call
    /// with the same rng seed (see [`crate::sweep_cache`]).
    ///
    /// [`discover`]: Discoverer::discover
    pub fn discover_resumable(
        &self,
        rng: &mut dyn RngCore,
        series: &Tensor,
        dir: &Path,
    ) -> std::io::Result<CausalGraph> {
        let payload = fingerprint_payload(&format!("{:?}", self.config), series);
        let cache = SweepCache::open(dir, "cMLP", &payload)?;
        Ok(self.discover_impl(rng, series, Some(&cache)))
    }
}

impl Discoverer for Cmlp {
    fn name(&self) -> &'static str {
        "cMLP"
    }

    fn outputs_delays(&self) -> bool {
        true
    }

    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        self.discover_impl(rng, series, None)
    }
}

impl Cmlp {
    fn discover_impl(
        &self,
        rng: &mut dyn RngCore,
        series: &Tensor,
        cache: Option<&SweepCache>,
    ) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let std_series = standardize(series);
        let (inputs, targets) = lagged_design(&std_series, cfg.lag);
        let s = inputs.shape()[0];

        // Tank et al.'s design makes each target series an independent
        // model, so the per-target training loops run concurrently. RNG use
        // stays sequential and thread-free: all initialisations draw from
        // `rng` up front (phase A), the rng-free training fans out across
        // the pool (phase B), and the k-means edge selection consumes `rng`
        // again in target order (phase C) — the discovered graph is
        // identical at any thread count.
        struct TargetState {
            store: ParamStore,
            l1: Linear,
            l2: Linear,
            y_col: Tensor,
        }

        // Phase A: sequential init (consumes rng).
        let mut states: Vec<TargetState> = (0..n)
            .map(|target| {
                // Per-target MLP: (N·lag) → hidden → 1.
                let mut store = ParamStore::new();
                let l1 = Linear::xavier(&mut store, rng, "in", n * cfg.lag, cfg.hidden, true);
                let l2 = Linear::xavier(&mut store, rng, "out", cfg.hidden, 1, true);
                let y_col =
                    Tensor::from_vec(vec![s, 1], targets.col(target)).expect("column extraction");
                TargetState {
                    store,
                    l1,
                    l2,
                    y_col,
                }
            })
            .collect();

        // Resume: restore already-trained input layers from the sweep
        // cache (sequentially — cache reads must not race). Only the input
        // layer needs restoring: Phase C reads nothing else.
        let restored: Vec<bool> = if let Some(c) = cache {
            states
                .iter_mut()
                .enumerate()
                .map(|(t, st)| match c.load(t).as_deref() {
                    Some([(name, w)])
                        if name == "in.weight"
                            && w.shape() == st.store.value(st.l1.weight()).shape() =>
                    {
                        *st.store.value_mut(st.l1.weight()) = w.clone();
                        true
                    }
                    _ => false,
                })
                .collect()
        } else {
            vec![false; n]
        };

        // Phase B: parallel rng-free training (restored targets skip it).
        // The heartbeat unit opens at 0/n from serial code so repeated
        // sweeps in one process restart the bar.
        cf_obs::heartbeat::progress("baseline.cmlp.target", 0, n as u64);
        cf_par::par_each_mut(&mut states, |idx, st| {
            if restored[idx] {
                cf_obs::heartbeat::progress_inc("baseline.cmlp.target", n as u64);
                return;
            }
            let mut adam = Adam::new(cfg.lr);
            for _ in 0..cfg.epochs {
                with_pooled_tape(|tape| {
                    let bound = st.store.bind(tape);
                    let x = tape.constant(inputs.clone());
                    let h_lin = st.l1.forward(tape, &bound, x);
                    let h = tape.leaky_relu(h_lin, 0.01);
                    let pred = st.l2.forward(tape, &bound, h);
                    let tgt = tape.constant(st.y_col.clone());
                    let diff = tape.sub(pred, tgt);
                    let sq = tape.square(diff);
                    let mse = tape.mean_all(sq);
                    let grads = tape.backward(mse);
                    adam.step(&mut st.store, &bound, &grads);
                });

                // Proximal group-lasso step (cMLP trains with proximal
                // gradient descent): shrink each source series' input rows
                // toward zero, zeroing whole groups whose norm falls below
                // the threshold.
                let thresh = cfg.lr * cfg.lambda;
                let norms: Vec<f64> = {
                    let w = st.store.value(st.l1.weight());
                    (0..n).map(|i| group_norm(w, i, cfg.lag)).collect()
                };
                let w = st.store.value_mut(st.l1.weight());
                let hcols = w.shape()[1];
                for (i, &norm) in norms.iter().enumerate() {
                    let factor = if norm > thresh {
                        1.0 - thresh / norm
                    } else {
                        0.0
                    };
                    for r in i * cfg.lag..(i + 1) * cfg.lag {
                        for c in 0..hcols {
                            let v = w.get2(r, c);
                            w.set2(r, c, v * factor);
                        }
                    }
                }
            }
            // Per-target heartbeat tick: sweep progress for the monitor.
            cf_obs::heartbeat::progress_inc("baseline.cmlp.target", n as u64);
        });

        // Checkpoint each freshly trained target (sequential writes, so a
        // crash mid-sweep loses at most the in-flight target).
        if let Some(c) = cache {
            for (t, st) in states.iter().enumerate() {
                if !restored[t] {
                    c.store(t, &[("in.weight", st.store.value(st.l1.weight()))]);
                }
            }
        }

        // Phase C: sequential edge selection (consumes rng).
        let mut graph = CausalGraph::new(n);
        for (target, st) in states.iter().enumerate() {
            // Causal scores: group norms of the trained input layer.
            let w_in = st.store.value(st.l1.weight());
            let scores: Vec<f64> = (0..n).map(|i| group_norm(w_in, i, cfg.lag)).collect();
            let mask = top_class_mask(rng, &scores, 2, 1);
            for (i, &selected) in mask.iter().enumerate() {
                if !selected {
                    continue;
                }
                // Delay: the lag with the largest input-row norm.
                let mut best_lag = 1;
                let mut best = f64::NEG_INFINITY;
                for el in 1..=cfg.lag {
                    let v = lag_norm(w_in, i, cfg.lag, el);
                    if v > best {
                        best = v;
                        best_lag = el;
                    }
                }
                graph.add_edge(i, target, Some(best_lag));
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_fork_better_than_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Fork, 500);
        let cmlp = Cmlp::new(CmlpConfig {
            epochs: 80,
            ..Default::default()
        });
        let g = cmlp.discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.4, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn outputs_delays_on_every_edge() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::VStructure, 300);
        let cmlp = Cmlp::new(CmlpConfig {
            epochs: 40,
            ..Default::default()
        });
        let g = cmlp.discover(&mut rng, &data.series);
        assert!(cmlp.outputs_delays());
        for e in g.edges() {
            let d = e.delay.expect("cMLP must annotate delays");
            assert!((1..=4).contains(&d), "delay {d} outside lag range");
        }
    }

    #[test]
    fn graph_covers_all_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(&mut rng, Structure::Mediator, 200);
        let g = Cmlp::new(CmlpConfig {
            epochs: 20,
            ..Default::default()
        })
        .discover(&mut rng, &data.series);
        assert_eq!(g.num_series(), 3);
    }
}
