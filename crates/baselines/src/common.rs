//! Shared utilities for the baseline methods: lagged design matrices,
//! standardisation, group norms, and TCDF's largest-gap threshold.

use cf_tensor::Tensor;

/// Z-scores each row of an `N×L` matrix (same recipe as the core pipeline).
pub(crate) fn standardize(series: &Tensor) -> Tensor {
    let _span = cf_obs::span::enter("baseline.standardize");
    let (n, l) = (series.shape()[0], series.shape()[1]);
    let mut out = series.clone();
    for i in 0..n {
        let row = series.row(i);
        let mean = row.iter().sum::<f64>() / l as f64;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / l as f64;
        let std = var.sqrt().max(1e-12);
        for t in 0..l {
            out.set2(i, t, (row[t] - mean) / std);
        }
    }
    out
}

/// Builds the lagged regression design for one-step-ahead prediction.
///
/// Returns `(inputs, targets)` where `inputs` is `S×(N·lag)` — sample `s`
/// holds `x_i[t−ℓ]` for every series `i` and lag `ℓ ∈ 1..=lag`, laid out
/// series-major (`i·lag + (ℓ−1)`) — and `targets` is `S×N` with the values
/// at time `t`. `S = L − lag` samples.
pub(crate) fn lagged_design(series: &Tensor, lag: usize) -> (Tensor, Tensor) {
    let _span = cf_obs::span::enter("baseline.lagged_design");
    let (n, l) = (series.shape()[0], series.shape()[1]);
    assert!(lag >= 1 && lag < l, "lag {lag} out of range for length {l}");
    let s = l - lag;
    let mut inputs = Tensor::zeros(&[s, n * lag]);
    let mut targets = Tensor::zeros(&[s, n]);
    for sample in 0..s {
        let t = sample + lag;
        for i in 0..n {
            for el in 1..=lag {
                inputs.set2(sample, i * lag + (el - 1), series.get2(i, t - el));
            }
            targets.set2(sample, i, series.get2(i, t));
        }
    }
    (inputs, targets)
}

/// L2 norm of the weight rows belonging to one input group.
///
/// `w` is `(N·lag)×H`; the group of series `i` is rows `i·lag .. (i+1)·lag`.
/// Used both for the causal score (norm over the whole group) and — with
/// `lag_of_group` — for per-lag attribution.
pub(crate) fn group_norm(w: &Tensor, series_idx: usize, lag: usize) -> f64 {
    let h = w.shape()[1];
    let mut acc = 0.0;
    for r in series_idx * lag..(series_idx + 1) * lag {
        for c in 0..h {
            let v = w.get2(r, c);
            acc += v * v;
        }
    }
    acc.sqrt()
}

/// L2 norm of a single `(series, lag)` row of the input weight matrix.
pub(crate) fn lag_norm(w: &Tensor, series_idx: usize, lag: usize, which_lag: usize) -> f64 {
    assert!(which_lag >= 1 && which_lag <= lag);
    let h = w.shape()[1];
    let r = series_idx * lag + (which_lag - 1);
    let mut acc = 0.0;
    for c in 0..h {
        let v = w.get2(r, c);
        acc += v * v;
    }
    acc.sqrt()
}

/// TCDF's cause-selection rule: sort the scores descending and cut at the
/// largest *relative* gap; everything above the gap is causal. Returns a
/// mask aligned with `scores`. With fewer than 2 distinct values, selects
/// everything (no gap to find).
pub fn largest_gap_threshold(scores: &[f64]) -> Vec<bool> {
    let _span = cf_obs::span::enter("baseline.gap_threshold");
    if scores.len() < 2 {
        return vec![true; scores.len()];
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN scores"));
    let sorted: Vec<f64> = order.iter().map(|&i| scores[i]).collect();
    let mut best_gap = f64::NEG_INFINITY;
    let mut cut = sorted.len(); // default: select all
    for k in 0..sorted.len() - 1 {
        let gap = sorted[k] - sorted[k + 1];
        if gap > best_gap {
            best_gap = gap;
            cut = k + 1;
        }
    }
    if best_gap <= 0.0 {
        return vec![true; scores.len()];
    }
    let mut mask = vec![false; scores.len()];
    for &i in order.iter().take(cut) {
        mask[i] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lagged_design_layout() {
        // Series 0: 0,1,2,3,4 ; series 1: 10,11,12,13,14 ; lag 2.
        let series = Tensor::from_vec(
            vec![2, 5],
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0, 14.0],
        )
        .unwrap();
        let (x, y) = lagged_design(&series, 2);
        assert_eq!(x.shape(), &[3, 4]);
        assert_eq!(y.shape(), &[3, 2]);
        // Sample 0 targets t=2: x0[1], x0[0], x1[1], x1[0].
        assert_eq!(x.row(0), &[1.0, 0.0, 11.0, 10.0]);
        assert_eq!(y.row(0), &[2.0, 12.0]);
        // Sample 2 targets t=4.
        assert_eq!(x.row(2), &[3.0, 2.0, 13.0, 12.0]);
        assert_eq!(y.row(2), &[4.0, 14.0]);
    }

    #[test]
    fn group_and_lag_norms() {
        // 2 series × lag 2 → 4 input rows, H = 1.
        let w = Tensor::from_vec(vec![4, 1], vec![3.0, 4.0, 0.0, 5.0]).unwrap();
        assert!((group_norm(&w, 0, 2) - 5.0).abs() < 1e-12); // √(9+16)
        assert!((group_norm(&w, 1, 2) - 5.0).abs() < 1e-12); // √(0+25)
        assert_eq!(lag_norm(&w, 0, 2, 1), 3.0);
        assert_eq!(lag_norm(&w, 0, 2, 2), 4.0);
        assert_eq!(lag_norm(&w, 1, 2, 2), 5.0);
    }

    #[test]
    fn gap_threshold_separates_clear_groups() {
        let mask = largest_gap_threshold(&[0.9, 0.05, 0.85, 0.01]);
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn gap_threshold_single_winner() {
        let mask = largest_gap_threshold(&[0.9, 0.1, 0.12, 0.08]);
        assert_eq!(mask, vec![true, false, false, false]);
    }

    #[test]
    fn gap_threshold_uniform_selects_all() {
        let mask = largest_gap_threshold(&[0.5, 0.5, 0.5]);
        assert!(mask.iter().all(|&m| m));
        assert_eq!(largest_gap_threshold(&[1.0]), vec![true]);
        assert!(largest_gap_threshold(&[]).is_empty());
    }

    #[test]
    fn standardize_rows() {
        let series = Tensor::from_vec(vec![1, 4], vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        let s = standardize(&series);
        assert!(s.row(0).iter().sum::<f64>().abs() < 1e-12);
    }
}
