//! DVGNN-lite — dynamic diffusion-variational graph neural network [49].
//!
//! DVGNN learns a latent causal adjacency whose edge probabilities drive a
//! graph-convolutional predictor; the paper evaluates its edge scores with
//! k-means thresholding (§5.3: "Since DVGNN and CUTS output the causal
//! scores for each potential causal relation, we also identify the causal
//! relations by k-means as CausalFormer"), which is exactly how this
//! re-implementation reads its result.
//!
//! `-lite`: the diffusion-model decoder and variational machinery are
//! dropped — on fully-observed benchmark series they regularise the same
//! adjacency this module learns directly. What is kept is the causal
//! scoring core: sigmoid edge probabilities `σ(L)` gating a two-lag graph
//! predictor, trained end-to-end with a sparsity penalty. DVGNN does not
//! output causal delays (Table 2 omits it).

use crate::common::standardize;
use crate::Discoverer;
use cf_metrics::kmeans::top_class_mask;
use cf_metrics::CausalGraph;
use cf_nn::{Adam, Optimizer, ParamStore};
use cf_tensor::{with_pooled_tape, xavier_uniform, Tensor};
use rand::RngCore;

/// Hyper-parameters of the DVGNN-lite baseline.
#[derive(Debug, Clone, Copy)]
pub struct DvgnnConfig {
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L1 coefficient on the edge probabilities.
    pub lambda: f64,
    /// k-means classes for edge selection.
    pub n_clusters: usize,
    /// Top classes kept as causal.
    pub m_top: usize,
}

impl Default for DvgnnConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 2e-2,
            lambda: 1e-3,
            n_clusters: 2,
            m_top: 1,
        }
    }
}

/// The DVGNN-lite discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dvgnn {
    /// Hyper-parameters.
    pub config: DvgnnConfig,
}

impl Dvgnn {
    /// A DVGNN-lite with the given configuration.
    pub fn new(config: DvgnnConfig) -> Self {
        Self { config }
    }
}

impl Discoverer for Dvgnn {
    fn name(&self) -> &'static str {
        "DVGNN"
    }

    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let l = series.shape()[1];
        assert!(l > 3, "series too short");
        let std_series = standardize(series);

        // One-step design with two lags: predict x[:,t] from x[:,t−1], x[:,t−2].
        let s = l - 2;
        let mut x1 = Tensor::zeros(&[s, n]); // lag 1
        let mut x2 = Tensor::zeros(&[s, n]); // lag 2
        let mut y = Tensor::zeros(&[s, n]);
        for sample in 0..s {
            let t = sample + 2;
            for i in 0..n {
                x1.set2(sample, i, std_series.get2(i, t - 1));
                x2.set2(sample, i, std_series.get2(i, t - 2));
                y.set2(sample, i, std_series.get2(i, t));
            }
        }

        let mut store = ParamStore::new();
        // Edge logits; σ(0) = 0.5 keeps the initial graph undecided.
        let logits = store.register("edge_logits", Tensor::zeros(&[n, n]));
        // Per-lag mixing weights (edge-probability–gated message passing).
        let w1 = store.register("w1", xavier_uniform(rng, &[n, n], n, n));
        let w2 = store.register("w2", xavier_uniform(rng, &[n, n], n, n));
        let decoder = store.register("decoder", Tensor::eye(n));
        let mut adam = Adam::new(cfg.lr);

        for _ in 0..cfg.epochs {
            with_pooled_tape(|tape| {
                let bound = store.bind(tape);
                let probs = tape.sigmoid(bound.var(logits));
                // Gated adjacency per lag: A_k[i,j] = σ(L[i,j]) · W_k[i,j].
                let a1 = tape.mul(probs, bound.var(w1));
                let a2 = tape.mul(probs, bound.var(w2));
                let x1v = tape.constant(x1.clone());
                let x2v = tape.constant(x2.clone());
                // Message passing: column j of (X·A) mixes sources i weighted
                // by the i→j edge.
                let m1 = tape.matmul(x1v, a1);
                let m2 = tape.matmul(x2v, a2);
                let mixed = tape.add(m1, m2);
                let act = tape.leaky_relu(mixed, 0.1);
                let pred = tape.matmul(act, bound.var(decoder));
                let yv = tape.constant(y.clone());
                let diff = tape.sub(pred, yv);
                let sq = tape.square(diff);
                let mse = tape.mean_all(sq);
                // σ(L) > 0, so the L1 penalty is just the sum.
                let psum = tape.sum_all(probs);
                let penalty = tape.scale(psum, cfg.lambda);
                let loss = tape.add(mse, penalty);
                let grads = tape.backward(loss);
                adam.step(&mut store, &bound, &grads);
            });
        }

        // Edge scores = σ(L); k-means per target (column of the adjacency).
        let probs = store.value(logits).map(|v| 1.0 / (1.0 + (-v).exp()));
        let mut graph = CausalGraph::new(n);
        for target in 0..n {
            let scores: Vec<f64> = (0..n).map(|i| probs.get2(i, target)).collect();
            let mask = top_class_mask(rng, &scores, cfg.n_clusters, cfg.m_top);
            for (i, &selected) in mask.iter().enumerate() {
                if selected {
                    graph.add_edge(i, target, None);
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_fork_better_than_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Fork, 400);
        let g = Dvgnn::default().discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.4, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn does_not_output_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::VStructure, 200);
        let dvgnn = Dvgnn::new(DvgnnConfig {
            epochs: 30,
            ..Default::default()
        });
        assert!(!dvgnn.outputs_delays());
        let g = dvgnn.discover(&mut rng, &data.series);
        for e in g.edges() {
            assert_eq!(e.delay, None);
        }
    }
}
