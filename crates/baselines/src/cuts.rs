//! CUTS-lite — neural causal discovery from irregular time series [50].
//!
//! CUTS alternates (a) imputing unobserved points with a delayed-supervision
//! graph neural network and (b) learning a sparse causal graph of
//! per-edge gates under a sparsity penalty. Our benchmarks are regular and
//! fully observed, so stage (a) has nothing to impute; this `-lite`
//! re-implementation keeps stage (b) — the component that produces the
//! causal scores the paper feeds into k-means (§5.3).
//!
//! Per target `j`, a small MLP predicts `x_j[t]` from all series' lagged
//! values, each multiplied by a learnable gate `σ(g)` per (source, lag).
//! The sparsity penalty pushes gates of non-causal inputs to 0. The causal
//! score of `i → j` is the maximum gate over lags; k-means selects the
//! causal class. CUTS does not output delays (Table 2 omits it).

use crate::common::{lagged_design, standardize};
use crate::Discoverer;
use cf_metrics::kmeans::top_class_mask;
use cf_metrics::CausalGraph;
use cf_nn::{Adam, Linear, Optimizer, ParamStore};
use cf_tensor::{with_pooled_tape, Tensor};
use rand::RngCore;

/// Hyper-parameters of the CUTS-lite baseline.
#[derive(Debug, Clone, Copy)]
pub struct CutsConfig {
    /// Maximum lag considered.
    pub lag: usize,
    /// Hidden width of each per-target MLP.
    pub hidden: usize,
    /// Sparsity coefficient on the gates.
    pub lambda: f64,
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// k-means classes for edge selection.
    pub n_clusters: usize,
    /// Top classes kept as causal.
    pub m_top: usize,
}

impl Default for CutsConfig {
    fn default() -> Self {
        Self {
            lag: 4,
            hidden: 16,
            lambda: 2e-3,
            epochs: 150,
            lr: 2e-2,
            n_clusters: 2,
            m_top: 1,
        }
    }
}

/// The CUTS-lite discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cuts {
    /// Hyper-parameters.
    pub config: CutsConfig,
}

impl Cuts {
    /// A CUTS-lite with the given configuration.
    pub fn new(config: CutsConfig) -> Self {
        Self { config }
    }
}

impl Discoverer for Cuts {
    fn name(&self) -> &'static str {
        "CUTS"
    }

    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let std_series = standardize(series);
        let (inputs, targets) = lagged_design(&std_series, cfg.lag);
        let s = inputs.shape()[0];

        let mut graph = CausalGraph::new(n);
        for target in 0..n {
            let mut store = ParamStore::new();
            // Per-(source,lag) gate logits; σ(1) ≈ 0.73 starts gates open.
            let gates = store.register("gates", Tensor::ones(&[n * cfg.lag]));
            let l1 = Linear::xavier(&mut store, rng, "in", n * cfg.lag, cfg.hidden, true);
            let l2 = Linear::xavier(&mut store, rng, "out", cfg.hidden, 1, true);
            let mut adam = Adam::new(cfg.lr);

            let y_col =
                Tensor::from_vec(vec![s, 1], targets.col(target)).expect("column extraction");

            for _ in 0..cfg.epochs {
                with_pooled_tape(|tape| {
                    let bound = store.bind(tape);
                    let gate_probs = tape.sigmoid(bound.var(gates));
                    let x = tape.constant(inputs.clone());
                    let gated = tape.mul_row_vector(x, gate_probs);
                    let h_lin = l1.forward(tape, &bound, gated);
                    let h = tape.leaky_relu(h_lin, 0.01);
                    let pred = l2.forward(tape, &bound, h);
                    let tgt = tape.constant(y_col.clone());
                    let diff = tape.sub(pred, tgt);
                    let sq = tape.square(diff);
                    let mse = tape.mean_all(sq);
                    // σ > 0 ⇒ L1 = plain sum.
                    let gsum = tape.sum_all(gate_probs);
                    let penalty = tape.scale(gsum, cfg.lambda);
                    let loss = tape.add(mse, penalty);
                    let grads = tape.backward(loss);
                    adam.step(&mut store, &bound, &grads);
                });
            }

            // Score i→target: max gate over lags.
            let g_final = store.value(gates).map(|v| 1.0 / (1.0 + (-v).exp()));
            let scores: Vec<f64> = (0..n)
                .map(|i| {
                    (0..cfg.lag)
                        .map(|el| g_final.data()[i * cfg.lag + el])
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .collect();
            let mask = top_class_mask(rng, &scores, cfg.n_clusters, cfg.m_top);
            for (i, &selected) in mask.iter().enumerate() {
                if selected {
                    graph.add_edge(i, target, None);
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_fork_better_than_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Fork, 400);
        let cuts = Cuts::new(CutsConfig {
            epochs: 80,
            ..Default::default()
        });
        let g = cuts.discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.3, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn does_not_output_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::Fork, 200);
        let cuts = Cuts::new(CutsConfig {
            epochs: 10,
            ..Default::default()
        });
        assert!(!cuts.outputs_delays());
        let g = cuts.discover(&mut rng, &data.series);
        for e in g.edges() {
            assert_eq!(e.delay, None);
        }
    }
}
