//! Linear VAR Granger causality — the classical statistic-based comparator
//! the paper's related work opens with (§2.1): fit a vector autoregression
//! and test, per pair, whether series `i`'s lags improve the prediction of
//! series `j` (nested-regression F-test).
//!
//! `x_j[t] = Σ_τ Σ_i w_{i,j}^τ x_i[t−τ] + e`; `i → j` iff dropping all of
//! `i`'s lags significantly increases the residual sum of squares. The
//! delay annotation is the lag with the largest absolute coefficient in
//! the full model.

use crate::common::{lagged_design, standardize};
use crate::Discoverer;
use cf_metrics::CausalGraph;
use cf_stats::{f_test_nested, ols};
use cf_tensor::Tensor;
use rand::RngCore;

/// Hyper-parameters of the VAR-Granger baseline.
#[derive(Debug, Clone, Copy)]
pub struct VarGrangerConfig {
    /// VAR order (maximum lag).
    pub lag: usize,
    /// Significance level of the per-edge F-test.
    pub alpha: f64,
}

impl Default for VarGrangerConfig {
    fn default() -> Self {
        Self {
            lag: 4,
            alpha: 0.01,
        }
    }
}

/// The VAR-Granger discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct VarGranger {
    /// Hyper-parameters.
    pub config: VarGrangerConfig,
}

impl VarGranger {
    /// A VAR-Granger tester with the given configuration.
    pub fn new(config: VarGrangerConfig) -> Self {
        Self { config }
    }
}

impl Discoverer for VarGranger {
    fn name(&self) -> &'static str {
        "VAR-Granger"
    }

    fn outputs_delays(&self) -> bool {
        true
    }

    fn discover(&self, _rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let std_series = standardize(series);
        let (inputs, targets) = lagged_design(&std_series, cfg.lag);
        let s = inputs.shape()[0];
        let full_params = n * cfg.lag + 1;
        assert!(
            s > full_params + 1,
            "too few samples ({s}) for a VAR({}) over {n} series",
            cfg.lag
        );

        // Column views of the design: column (i, τ) is at i·lag + (τ−1).
        let design_cols: Vec<Vec<f64>> = (0..n * cfg.lag).map(|c| inputs.col(c)).collect();

        let mut graph = CausalGraph::new(n);
        for target in 0..n {
            let y = targets.col(target);
            let (beta_full, rss_full) = ols(&design_cols, &y, 1e-8);
            let resid_df = s - full_params;

            for cause in 0..n {
                // Restricted model: drop all of `cause`'s lag columns.
                let restricted: Vec<Vec<f64>> = (0..n * cfg.lag)
                    .filter(|&c| c / cfg.lag != cause)
                    .map(|c| design_cols[c].clone())
                    .collect();
                let (_, rss_restricted) = ols(&restricted, &y, 1e-8);
                let (_, p) = f_test_nested(rss_restricted, rss_full, cfg.lag, resid_df);
                if p < cfg.alpha {
                    // Delay: the strongest full-model coefficient of the
                    // cause (beta[0] is the intercept).
                    let mut best_lag = 1;
                    let mut best = f64::NEG_INFINITY;
                    for tau in 1..=cfg.lag {
                        let coef = beta_full[1 + cause * cfg.lag + (tau - 1)].abs();
                        if coef > best {
                            best = coef;
                            best_lag = tau;
                        }
                    }
                    graph.add_edge(cause, target, Some(best_lag));
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_fork_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Fork, 800);
        let g = VarGranger::default().discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        // Linear Granger on a mildly non-linear SEM still finds the strong
        // couplings.
        assert!(f1 >= 0.6, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn delays_match_generator_lags() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::Mediator, 1000);
        let g = VarGranger::default().discover(&mut rng, &data.series);
        if let Some(Some(d)) = g.delay(0, 1) {
            assert_eq!(d, 1, "S1→S2 lag should be 1");
        }
        let pod = score::pod(&data.truth, &g);
        if let Some(p) = pod {
            assert!(p >= 0.5, "PoD {p} too low for a linear fit");
        }
    }

    #[test]
    fn stricter_alpha_yields_sparser_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(&mut rng, Structure::Diamond, 600);
        let loose = VarGranger::new(VarGrangerConfig {
            alpha: 0.2,
            ..Default::default()
        })
        .discover(&mut rng, &data.series);
        let strict = VarGranger::new(VarGrangerConfig {
            alpha: 1e-6,
            ..Default::default()
        })
        .discover(&mut rng, &data.series);
        assert!(strict.num_edges() <= loose.num_edges());
    }
}
