//! PCMCI-lite — constraint-based temporal causal discovery (Runge et al.
//! [25], referenced in the paper's §2.1).
//!
//! PCMCI runs two phases: PC₁ condition selection (iteratively prune the
//! lagged-parent candidate set of each variable with conditional
//! independence tests of growing conditioning size) and the MCI test
//! (momentary conditional independence of each remaining link given both
//! variables' parents). This `-lite` re-implementation keeps both phases
//! with partial-correlation / Fisher-z tests (ParCorr, PCMCI's default
//! test) but caps the conditioning size and conditions the MCI step on the
//! target's selected parents only — adequate at benchmark sizes and
//! documented in DESIGN.md.

use crate::common::standardize;
use crate::Discoverer;
use cf_metrics::CausalGraph;
use cf_stats::{fisher_z_test, partial_correlation};
use cf_tensor::Tensor;
use rand::RngCore;

/// Hyper-parameters of the PCMCI-lite baseline.
#[derive(Debug, Clone, Copy)]
pub struct PcmciConfig {
    /// Maximum lag τ_max.
    pub max_lag: usize,
    /// Significance level for both phases.
    pub alpha: f64,
    /// Maximum conditioning-set size in the PC₁ phase.
    pub max_cond: usize,
}

impl Default for PcmciConfig {
    fn default() -> Self {
        Self {
            max_lag: 4,
            alpha: 0.01,
            max_cond: 3,
        }
    }
}

/// The PCMCI-lite discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Pcmci {
    /// Hyper-parameters.
    pub config: PcmciConfig,
}

impl Pcmci {
    /// A PCMCI-lite with the given configuration.
    pub fn new(config: PcmciConfig) -> Self {
        Self { config }
    }
}

/// A lagged variable `(series, lag)` with `lag ≥ 1`.
type Parent = (usize, usize);

/// Extracts the aligned sample column of `(series, lag)` against targets at
/// time `t ∈ [max_lag, len)`.
fn lagged_column(series: &Tensor, max_lag: usize, parent: Parent) -> Vec<f64> {
    let (i, lag) = parent;
    let len = series.shape()[1];
    (max_lag..len).map(|t| series.get2(i, t - lag)).collect()
}

impl Discoverer for Pcmci {
    fn name(&self) -> &'static str {
        "PCMCI"
    }

    fn outputs_delays(&self) -> bool {
        true
    }

    fn discover(&self, _rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let len = series.shape()[1];
        assert!(len > cfg.max_lag + 10, "series too short for PCMCI");
        let std_series = standardize(series);
        let n_samples = len - cfg.max_lag;

        // Phase 1: PC₁ parent selection per target.
        let mut parents: Vec<Vec<Parent>> = Vec::with_capacity(n);
        for target in 0..n {
            let y: Vec<f64> = (cfg.max_lag..len)
                .map(|t| std_series.get2(target, t))
                .collect();
            // Start from all lagged candidates, strongest-first.
            let mut candidates: Vec<(Parent, f64)> = (0..n)
                .flat_map(|i| (1..=cfg.max_lag).map(move |lag| (i, lag)))
                .map(|p| {
                    let xcol = lagged_column(&std_series, cfg.max_lag, p);
                    let r = cf_stats::pearson(&xcol, &y);
                    (p, r.abs())
                })
                .collect();
            candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let mut selected: Vec<Parent> = candidates.iter().map(|(p, _)| *p).collect();

            // Iteratively prune with growing conditioning size.
            for cond_size in 0..=cfg.max_cond {
                let mut keep = Vec::new();
                for (k, &p) in selected.iter().enumerate() {
                    let xcol = lagged_column(&std_series, cfg.max_lag, p);
                    // Condition on the strongest `cond_size` other parents.
                    let z: Vec<Vec<f64>> = selected
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .take(cond_size)
                        .map(|(_, &q)| lagged_column(&std_series, cfg.max_lag, q))
                        .collect();
                    if z.len() < cond_size {
                        keep.push(p);
                        continue; // not enough conditions at this size
                    }
                    let r = partial_correlation(&xcol, &y, &z);
                    let pval = fisher_z_test(r, n_samples, z.len());
                    if pval < cfg.alpha {
                        keep.push(p);
                    }
                }
                selected = keep;
                if selected.len() <= 1 {
                    break;
                }
            }
            parents.push(selected);
        }

        // Phase 2: MCI — retest every surviving link conditioned on the
        // target's other parents; keep the most significant lag per pair.
        let mut graph = CausalGraph::new(n);
        for target in 0..n {
            let y: Vec<f64> = (cfg.max_lag..len)
                .map(|t| std_series.get2(target, t))
                .collect();
            let mut best_per_cause: Vec<Option<(usize, f64)>> = vec![None; n];
            for &p in &parents[target] {
                let (cause, lag) = p;
                let xcol = lagged_column(&std_series, cfg.max_lag, p);
                let z: Vec<Vec<f64>> = parents[target]
                    .iter()
                    .filter(|&&q| q != p)
                    .take(cfg.max_cond)
                    .map(|&q| lagged_column(&std_series, cfg.max_lag, q))
                    .collect();
                let r = partial_correlation(&xcol, &y, &z);
                let pval = fisher_z_test(r, n_samples, z.len());
                if pval < cfg.alpha {
                    match best_per_cause[cause] {
                        Some((_, best_p)) if best_p <= pval => {}
                        _ => best_per_cause[cause] = Some((lag, pval)),
                    }
                }
            }
            for (cause, entry) in best_per_cause.iter().enumerate() {
                if let Some((lag, _)) = entry {
                    graph.add_edge(cause, target, Some(*lag));
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_vstructure() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::VStructure, 800);
        let g = Pcmci::default().discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.6, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn conditioning_prunes_indirect_links() {
        // Mediator: S1→S2→S3 with a weaker direct S1→S3. The chain
        // correlation S1↔S3 at lag 2 must not produce extra false links
        // relative to raw correlation thresholding.
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::Mediator, 1000);
        let g = Pcmci::default().discover(&mut rng, &data.series);
        let c = score::confusion(&data.truth, &g);
        assert!(
            c.precision() >= 0.6,
            "precision {} too low: {g}",
            c.precision()
        );
    }

    #[test]
    fn outputs_one_edge_per_pair_with_delay() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(&mut rng, Structure::Fork, 600);
        let g = Pcmci::default().discover(&mut rng, &data.series);
        for e in g.edges() {
            assert!(e.delay.is_some());
            assert!(e.delay.unwrap() >= 1 && e.delay.unwrap() <= 4);
        }
    }
}
