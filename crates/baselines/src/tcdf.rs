//! TCDF — Temporal Causal Discovery Framework (Nauta et al. [10]).
//!
//! TCDF trains attention-based convolutional networks: per target, a
//! learnable attention score gates each input series, whose history is
//! aggregated by a *causal* temporal convolution; causes are the inputs
//! whose attention survives TCDF's largest-gap selection, and the causal
//! delay is read off the convolution kernel (the paper's Table 2 shows TCDF
//! winning delay discovery this way).
//!
//! Re-implementation notes: the original stacks dilated depthwise
//! convolutions; we use a single full-window causal convolution per
//! series pair (kernel length = window), which spans the same receptive
//! field on our short-lag benchmarks, and softmax attention rows in place
//! of TCDF's hard-tanh scores. Selection (largest gap) and delay read-out
//! (kernel argmax) follow the original. TCDF's permutation-based causal
//! validation step is omitted — it prunes borderline causes and does not
//! change the scoring mechanism.

use crate::common::{largest_gap_threshold, standardize};
use crate::Discoverer;
use cf_metrics::CausalGraph;
use cf_nn::{Adam, Optimizer, ParamStore};
use cf_tensor::{he_normal, with_pooled_tape, Tensor};
use rand::RngCore;

/// Hyper-parameters of the TCDF baseline.
#[derive(Debug, Clone, Copy)]
pub struct TcdfConfig {
    /// Window (and convolution receptive-field) length.
    pub window: usize,
    /// Stride between training windows.
    pub stride: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L1 coefficient on the convolution kernels.
    pub lambda: f64,
}

impl Default for TcdfConfig {
    fn default() -> Self {
        Self {
            window: 12,
            stride: 4,
            epochs: 80,
            lr: 2e-2,
            lambda: 1e-3,
        }
    }
}

/// The TCDF discoverer. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tcdf {
    /// Hyper-parameters.
    pub config: TcdfConfig,
}

impl Tcdf {
    /// A TCDF with the given configuration.
    pub fn new(config: TcdfConfig) -> Self {
        Self { config }
    }
}

impl Discoverer for Tcdf {
    fn name(&self) -> &'static str {
        "TCDF"
    }

    fn outputs_delays(&self) -> bool {
        true
    }

    fn discover(&self, rng: &mut dyn RngCore, series: &Tensor) -> CausalGraph {
        let cfg = self.config;
        let n = series.shape()[0];
        let l = series.shape()[1];
        assert!(l >= cfg.window, "series shorter than the TCDF window");
        let std_series = standardize(series);

        // Slice windows.
        let mut windows = Vec::new();
        let mut start = 0;
        while start + cfg.window <= l {
            let mut data = Vec::with_capacity(n * cfg.window);
            for i in 0..n {
                data.extend_from_slice(&std_series.row(i)[start..start + cfg.window]);
            }
            windows.push(Tensor::from_vec(vec![n, cfg.window], data).expect("consistent"));
            start += cfg.stride;
        }

        // Attention logits (N×N; row i = candidate causes of i) and causal
        // convolution kernels (N×N×T).
        let mut store = ParamStore::new();
        let attn_logits = store.register("attn", Tensor::zeros(&[n, n]));
        // Near-zero kernel init: taps only grow where the data demands it,
        // so the argmax-tap delay read-out reflects *learned* structure
        // rather than the random initialisation.
        let kernel = store.register(
            "kernel",
            he_normal(rng, &[n, n, cfg.window], cfg.window).scale(0.05),
        );
        let mut adam = Adam::new(cfg.lr);

        // Loss mask: skip the first slot (self-shift has nothing to feed it).
        let mut mask = Tensor::ones(&[n, cfg.window]);
        for i in 0..n {
            mask.set2(i, 0, 0.0);
        }

        for _ in 0..cfg.epochs {
            with_pooled_tape(|tape| {
                let bound = store.bind(tape);
                let attn = tape.softmax_rows(bound.var(attn_logits));
                let mut loss_acc = None;
                for w in &windows {
                    let x = tape.constant(w.clone());
                    let conv = tape.causal_conv(x, bound.var(kernel));
                    let shifted = tape.self_shift(conv);
                    let pred = tape.attn_apply(attn, shifted);
                    let tgt = tape.constant(w.clone());
                    let diff = tape.sub(pred, tgt);
                    let sq = tape.square(diff);
                    let masked = tape.mul_const(sq, mask.clone());
                    let term = tape.sum_all(masked);
                    loss_acc = Some(match loss_acc {
                        None => term,
                        Some(acc) => tape.add(acc, term),
                    });
                }
                let sum = loss_acc.expect("at least one window");
                let mse = tape.scale(sum, 1.0 / (windows.len() * n * (cfg.window - 1)) as f64);
                let l1k = tape.l1(bound.var(kernel));
                let penalty = tape.scale(l1k, cfg.lambda);
                let loss = tape.add(mse, penalty);
                let grads = tape.backward(loss);
                adam.step(&mut store, &bound, &grads);
            });
        }

        // Read out: attention per target row, largest-gap selection, kernel
        // argmax delay.
        let attn_final = store.value(attn_logits).softmax_rows();
        let kernel_final = store.value(kernel);
        let mut graph = CausalGraph::new(n);
        for target in 0..n {
            let scores: Vec<f64> = (0..n).map(|j| attn_final.get2(target, j)).collect();
            let mask = largest_gap_threshold(&scores);
            for (j, &selected) in mask.iter().enumerate() {
                if !selected {
                    continue;
                }
                let mut best_u = 0;
                let mut best = f64::NEG_INFINITY;
                for u in 0..cfg.window {
                    let v = kernel_final.get3(j, target, u).abs();
                    if v > best {
                        best = v;
                        best_u = u;
                    }
                }
                let mut delay = cfg.window - 1 - best_u;
                if j == target {
                    delay += 1; // diagonal rows are self-shifted
                }
                graph.add_edge(j, target, Some(delay));
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::synthetic::{generate, Structure};
    use cf_metrics::score;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_fork_better_than_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&mut rng, Structure::Fork, 400);
        let tcdf = Tcdf::new(TcdfConfig {
            epochs: 30,
            ..Default::default()
        });
        let g = tcdf.discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &g);
        assert!(f1 >= 0.4, "F1 {f1}, graph {g}, truth {}", data.truth);
    }

    #[test]
    fn outputs_delays_in_window_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&mut rng, Structure::Mediator, 300);
        let tcdf = Tcdf::new(TcdfConfig {
            epochs: 10,
            ..Default::default()
        });
        assert!(tcdf.outputs_delays());
        let g = tcdf.discover(&mut rng, &data.series);
        for e in g.edges() {
            let d = e.delay.expect("TCDF must annotate delays");
            assert!(d <= 12, "delay {d} outside receptive field");
        }
    }
}
