//! Per-target sweep checkpointing: an interrupted cMLP/cLSTM sweep that
//! resumes from its per-target artifacts must produce the same causal
//! graph as a plain uninterrupted `discover` call — and stale caches
//! (different series or hyper-parameters) must be ignored, not trusted.

use cf_baselines::{Clstm, ClstmConfig, Cmlp, CmlpConfig, Discoverer};
use cf_data::synthetic::{generate, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cf_sweep_resume_{tag}_{}_t{}",
        std::process::id(),
        std::env::var("CF_THREADS").unwrap_or_default()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cmlp_resume_matches_uninterrupted_sweep() {
    let mut rng = StdRng::seed_from_u64(0);
    let data = generate(&mut rng, Structure::Fork, 200);
    let cmlp = Cmlp::new(CmlpConfig {
        epochs: 25,
        ..Default::default()
    });

    let mut rng = StdRng::seed_from_u64(33);
    let plain = cmlp.discover(&mut rng, &data.series);

    // First sweep populates one artifact per target.
    let dir = tmp_dir("cmlp");
    let mut rng = StdRng::seed_from_u64(33);
    let first = cmlp
        .discover_resumable(&mut rng, &data.series, &dir)
        .unwrap();
    assert_eq!(plain, first, "caching must not change the graph");
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 3);

    // Simulate a crash that lost the last target, then resume: the two
    // cached targets are skipped, the lost one retrains, and the graph is
    // identical (the rng phases are independent of cache hits).
    std::fs::remove_file(dir.join("cMLP-target-0002.cfck")).unwrap();
    let mut rng = StdRng::seed_from_u64(33);
    let resumed = cmlp
        .discover_resumable(&mut rng, &data.series, &dir)
        .unwrap();
    assert_eq!(plain, resumed, "resumed sweep diverged");

    // Fully warm cache: every target skips training, same graph again.
    let mut rng = StdRng::seed_from_u64(33);
    let warm = cmlp
        .discover_resumable(&mut rng, &data.series, &dir)
        .unwrap();
    assert_eq!(plain, warm, "warm-cache sweep diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clstm_resume_matches_uninterrupted_sweep() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = generate(&mut rng, Structure::VStructure, 120);
    let clstm = Clstm::new(ClstmConfig {
        epochs: 4,
        ..Default::default()
    });

    let mut rng = StdRng::seed_from_u64(44);
    let plain = clstm.discover(&mut rng, &data.series);

    let dir = tmp_dir("clstm");
    let mut rng = StdRng::seed_from_u64(44);
    let first = clstm
        .discover_resumable(&mut rng, &data.series, &dir)
        .unwrap();
    assert_eq!(plain, first, "caching must not change the graph");

    std::fs::remove_file(dir.join("cLSTM-target-0000.cfck")).unwrap();
    let mut rng = StdRng::seed_from_u64(44);
    let resumed = clstm
        .discover_resumable(&mut rng, &data.series, &dir)
        .unwrap();
    assert_eq!(plain, resumed, "resumed sweep diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_cache_is_retrained_not_trusted() {
    let mut rng = StdRng::seed_from_u64(2);
    let fork = generate(&mut rng, Structure::Fork, 150);
    let mediator = generate(&mut rng, Structure::Mediator, 150);
    let cmlp = Cmlp::new(CmlpConfig {
        epochs: 15,
        ..Default::default()
    });

    // Populate the cache from one dataset, then sweep another through the
    // same directory: the fingerprints differ, so every entry misses.
    let dir = tmp_dir("stale");
    let mut rng = StdRng::seed_from_u64(55);
    cmlp.discover_resumable(&mut rng, &fork.series, &dir)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(55);
    let plain = cmlp.discover(&mut rng, &mediator.series);
    let mut rng = StdRng::seed_from_u64(55);
    let swept = cmlp
        .discover_resumable(&mut rng, &mediator.series, &dir)
        .unwrap();
    assert_eq!(plain, swept, "stale cache leaked into the result");
    std::fs::remove_dir_all(&dir).ok();
}
