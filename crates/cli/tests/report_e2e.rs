//! End-to-end observability pipeline: `generate` → `discover` with all
//! three artifact outputs → `report`, asserting the trace is structurally
//! valid Chrome trace_event JSON, the cfdiag stream is complete, and the
//! HTML dashboard carries every panel.
//!
//! Runs as an integration test (own process) because discover flips
//! process-global observability state (trace recorder, diag writer,
//! metrics sink) that must not race the library unit tests.

use cf_cli::{
    run_analyze, run_discover, run_generate, run_report, AnalyzeArgs, DiscoverArgs, GenerateArgs,
    ReportArgs,
};
use serde_json::Value;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cf_report_e2e_{}_{name}", std::process::id()))
}

#[test]
fn discover_artifacts_render_into_report() {
    let csv = tmp("fork.csv");
    let metrics = tmp("metrics.jsonl");
    let trace = tmp("trace.json");
    let trace_1t = tmp("trace_1t.json");
    let diag = tmp("diag.cfdiag");
    let html_path = tmp("report.html");

    run_generate(&GenerateArgs {
        dataset: "fork".into(),
        length: 200,
        seed: 3,
        output: csv.to_string_lossy().into_owned(),
        store_out: None,
        chunk_len: 65536,
        codec: "delta-varint".into(),
    })
    .unwrap();

    // Baseline run at 1 thread: the `--compare` / `--compare-trace`
    // baseline for scaling attribution.
    run_discover(&DiscoverArgs {
        input: csv.to_string_lossy().into_owned(),
        store: None,
        max_windows: None,
        read_ahead: None,
        preset: "synthetic-sparse".into(),
        window: Some(8),
        epochs: Some(3),
        seed: 3,
        threads: Some(1),
        dtype: causalformer::Dtype::F64,
        dot: None,
        save: None,
        metrics_out: None,
        trace_out: Some(trace_1t.to_string_lossy().into_owned()),
        diag_out: None,
        heartbeat_out: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        log_level: None,
        quiet: true,
    })
    .unwrap();

    let report = run_discover(&DiscoverArgs {
        input: csv.to_string_lossy().into_owned(),
        store: None,
        max_windows: None,
        read_ahead: None,
        preset: "synthetic-sparse".into(),
        window: Some(8),
        epochs: Some(3),
        seed: 3,
        threads: Some(2),
        dtype: causalformer::Dtype::F64,
        dot: None,
        save: None,
        metrics_out: Some(metrics.to_string_lossy().into_owned()),
        trace_out: Some(trace.to_string_lossy().into_owned()),
        diag_out: Some(diag.to_string_lossy().into_owned()),
        heartbeat_out: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        log_level: None,
        quiet: true,
    })
    .unwrap();
    assert!(report.contains("trace written to"), "{report}");
    assert!(report.contains("diagnostics written to"), "{report}");

    // The trace must be loadable Chrome trace_event JSON with thread
    // metadata, complete spans from the pipeline stages, and worker
    // timelines from cf-par.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let v: Value = serde_json::from_str(&trace_text).unwrap();
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    let phase = |ph: &str, name: &str| {
        events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some(ph)
                && e.get("name").and_then(Value::as_str) == Some(name)
        })
    };
    assert!(phase("M", "thread_name"), "thread metadata missing");
    for span in ["discover", "train", "epoch", "detect", "par.job"] {
        assert!(phase("X", span), "span {span:?} missing from trace");
    }
    assert!(
        v.get("traceEpochUnix").and_then(Value::as_f64).is_some(),
        "trace epoch anchor missing"
    );

    // The diagnostics stream: header + one record per epoch + detect.
    let diag_text = std::fs::read_to_string(&diag).unwrap();
    assert!(diag_text.starts_with(r#"{"record":"header","format":"cfdiag""#));
    assert_eq!(diag_text.matches(r#""record":"epoch""#).count(), 3);
    assert_eq!(diag_text.matches(r#""record":"detect""#).count(), 1);

    // The metrics stream leads with its schema version.
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.starts_with(r#"{"event":"meta","schema_version":"#),
        "{}",
        metrics_text.lines().next().unwrap_or_default()
    );

    // Render the dashboard and check each panel actually charted data
    // (an <svg> inside the section, not the missing-input note).
    // The span summary must carry percentile estimates (schema 2.1).
    assert!(metrics_text.contains(r#""p95_secs":"#), "{metrics_text}");
    assert!(
        metrics_text.contains(r#""event":"span_hist""#),
        "{metrics_text}"
    );

    let msg = run_report(&ReportArgs {
        metrics: Some(metrics.to_string_lossy().into_owned()),
        trace: Some(trace_1t.to_string_lossy().into_owned()),
        compare_trace: Some(trace.to_string_lossy().into_owned()),
        diag: Some(diag.to_string_lossy().into_owned()),
        out: html_path.to_string_lossy().into_owned(),
    })
    .unwrap();
    assert!(msg.contains("report written to"), "{msg}");
    let html = std::fs::read_to_string(&html_path).unwrap();
    let section = |id: &str| {
        html.split(&format!(r#"id="{id}""#))
            .nth(1)
            .unwrap_or_else(|| panic!("{id} missing"))
            .split("</section>")
            .next()
            .unwrap()
    };
    for id in [
        "panel-training-loss",
        "panel-causal-evolution",
        "panel-thread-utilization",
        "panel-pool",
        "panel-percentiles",
    ] {
        assert!(section(id).contains("<svg"), "{id} rendered no chart");
    }
    // The analysis panels render tables, not charts.
    assert!(
        section("panel-top-self-time").contains("<table"),
        "self-time panel rendered no table"
    );
    let scaling = section("panel-scaling");
    assert!(
        scaling.contains("<table"),
        "scaling panel rendered no table"
    );
    assert!(
        scaling.contains("Amdahl") || scaling.contains("speedup"),
        "{scaling}"
    );
    assert!(!html.contains("<script"), "report must be script-free");

    // The analyze subcommand on the same trace pair produces the
    // scaling-attribution table, naming pipeline spans.
    let (out, _) = run_analyze(&AnalyzeArgs {
        compare: Some((
            trace_1t.to_string_lossy().into_owned(),
            trace.to_string_lossy().into_owned(),
        )),
        ..AnalyzeArgs::default()
    })
    .unwrap();
    assert!(out.contains("scaling attribution"), "{out}");
    assert!(
        out.contains("| train |") || out.contains("| epoch |"),
        "{out}"
    );
    assert!(out.contains("top self-time spans"), "{out}");

    for p in [&csv, &metrics, &trace, &trace_1t, &diag, &html_path] {
        std::fs::remove_file(p).ok();
    }
}
