//! # cf-cli
//!
//! Library backing the `causalformer` command-line tool. The CLI logic
//! lives here (parsing, command execution against in-memory buffers) so it
//! is unit-testable; `main.rs` is a thin shell.
//!
//! Commands:
//!
//! * `discover` — run CausalFormer on a CSV of time series (column per
//!   series), print the causal graph, optionally write DOT and a model
//!   checkpoint.
//! * `generate` — synthesise one of the benchmark datasets to CSV (for
//!   trying the tool without data).
//! * `report` — render the artifacts a `discover` run wrote
//!   (`--metrics-out`, `--trace-out`, `--diag-out`) into one
//!   self-contained HTML dashboard.
//!
//! ```text
//! causalformer discover --input series.csv --preset fmri --dot graph.dot
//! causalformer generate --dataset fork --length 600 --output fork.csv
//! causalformer report --metrics run.jsonl --trace trace.json --out report.html
//! ```

pub mod analyze;
pub mod bench_diff;
pub mod monitor;
pub mod report;

pub use analyze::{run_analyze, AnalyzeArgs};
pub use bench_diff::{run_bench_diff, BenchDiffArgs};
pub use monitor::{run_monitor, MonitorArgs};
pub use report::{run_report, ReportArgs};

use causalformer::{
    diag, effective_stride, persist, presets, trainer, CausalFormer, CheckpointConfig, Dtype,
    StreamOptions,
};
use cf_data::{io as csv_io, lorenz96, synthetic, window};
use cf_metrics::graph_dot_plain;
use cf_store::{FsStorage, SeriesStore, SeriesWriter};
use cf_tensor::{Tensor, TensorBase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// CLI errors with user-facing messages.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the string is the usage hint.
    Usage(String),
    /// Anything that went wrong executing the command.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            CliError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Top-level usage text.
pub const USAGE: &str = "\
causalformer — temporal causal discovery (CausalFormer, ICDE 2025)

usage:
  causalformer discover (--input FILE.csv | --store DIR) [--preset NAME]
                        [--window T] [--epochs E] [--seed S] [--threads N]
                        [--dtype D] [--max-windows N] [--read-ahead N]
                        [--dot FILE] [--save FILE] [--metrics-out FILE.jsonl]
                        [--trace-out FILE.json] [--diag-out FILE.cfdiag]
                        [--heartbeat-out FILE.jsonl]
                        [--checkpoint-dir DIR] [--checkpoint-every N]
                        [--resume] [--log-level LEVEL] [--quiet]
  causalformer generate --dataset NAME [--length L] [--seed S]
                        (--output FILE.csv | --store-out DIR)
                        [--chunk-len N] [--codec NAME]
  causalformer report   --out FILE.html [--metrics FILE.jsonl]
                        [--trace FILE.json] [--compare-trace FILE.json]
                        [--diag FILE.cfdiag]
  causalformer analyze  (--trace FILE.json | --compare BASE.json SCALED.json)
                        [--top N] [--threads-base N] [--threads-scaled N]
                        [--max-serial-fraction S] [--flamegraph FILE.folded]
                        [--json]
  causalformer bench-diff BASELINE.json NEW.json [--threshold R] [--json]
  causalformer monitor  HEARTBEAT.jsonl [--once] [--interval MS]

discover options:
  --store DIR          read the series from a chunked cf-store directory
                       (written by generate --store-out) instead of a CSV;
                       windows stream chunk-by-chunk, so peak memory is set
                       by --max-windows, not the series length
  --max-windows N      window budget for --store (default 4096); when the
                       natural window count exceeds it, the stride widens
                       deterministically to N evenly spaced windows
  --read-ahead N       chunk read-ahead for --store streaming (default 2)
  --preset NAME        synthetic-dense | synthetic-sparse | lorenz | fmri | sst
                       (default: fmri — the most general setting)
  --window T           observation window override
  --epochs E           training epoch override
  --seed S             RNG seed (default 0)
  --threads N          worker threads (default: CF_THREADS env, else all
                       cores; results are identical at any thread count)
  --dtype D            compute precision: f64 (default; bitwise-
                       reproducible) or f32 (faster training — speedup
                       grows with model width — with f64-accumulated
                       reductions; results may differ in the last bits,
                       discovered graphs agree in practice)
  --dot FILE           write the discovered graph as Graphviz DOT
  --save FILE          write the trained model (.json — readable JSON;
                       .cft — compact CFTENS1 binary at the run's dtype)
  --metrics-out FILE   write JSONL telemetry (stage timings, per-epoch
                       records, tape op profile, discovery summary)
  --trace-out FILE     write a Chrome trace_event JSON timeline (load it
                       in Perfetto / chrome://tracing): per-thread spans,
                       worker activity, pool counters
  --diag-out FILE      write per-epoch model diagnostics (cfdiag JSONL:
                       mask sparsity/entropy, causal-score trajectories,
                       grad norms, relevance quantiles); the artifact is
                       bitwise identical at any --threads value
  --heartbeat-out FILE write live runtime telemetry as line-atomic JSONL:
                       a background sampler (CF_HEARTBEAT_MS, default 250)
                       records RSS, pool and scheduler counters, per-unit
                       progress/ETA, and stall flags — tail it live with
                       `causalformer monitor FILE`; the sampler never
                       touches the training path, so discovery stays
                       bitwise identical with or without it
                       (CF_WATCHDOG=warn:SECS | fatal:SECS arms a stall
                       watchdog that dumps open spans — and under fatal
                       exits nonzero — when no worker makes progress)
  --checkpoint-dir DIR write crash-safe training checkpoints into DIR
  --checkpoint-every N checkpoint every N epochs (default 1)
  --resume             continue from the newest checkpoint in DIR; the
                       result is bitwise identical to an uninterrupted run
  --log-level LEVEL    off | error | warn | info | debug | trace
                       (default info; the CF_LOG env var also works)
  --quiet              suppress per-epoch progress (same as --log-level warn)

generate options:
  --dataset NAME  diamond | mediator | v-structure | fork | lorenz96
  --length L      series length (default 600)
  --seed S        RNG seed (default 0)
  --store-out DIR write a chunked, checksummed cf-store instead of (or in
                  addition to) the CSV; lorenz96 streams straight into the
                  chunks, so --length can far exceed RAM
  --chunk-len N   store chunk length in time steps (default 65536)
  --codec NAME    store chunk codec: raw | delta | delta-varint
                  (default delta-varint)

report options:
  --out FILE      HTML output path (required)
  --metrics FILE  JSONL telemetry from discover --metrics-out
  --trace FILE    Chrome trace from discover --trace-out
  --diag FILE     diagnostics from discover --diag-out
                  (at least one input is required; panels whose input is
                  missing render a note instead of a chart)
  --compare-trace FILE
                  second Chrome trace of the same workload at a higher
                  thread count; adds a scaling-attribution panel

analyze options:
  --trace FILE         analyze one Chrome trace: top self-time spans,
                       thread utilization, serial fraction, critical path
  --compare BASE SCALED
                       compare two traces of the same workload (e.g. a
                       1-thread and a 4-thread run): ranks spans whose
                       wall time fails to shrink with more threads
  --top N              rows per table (default 15)
  --threads-base N     baseline parallelism (default: inferred from
                       cf-par worker timelines in the trace)
  --threads-scaled N   scaled-trace parallelism (default: inferred)
  --max-serial-fraction S
                       with --compare: exit 1 when the Amdahl serial
                       fraction exceeds S (skipped, with a note, when a
                       trace ran oversubscribed)
  --flamegraph FILE    with --trace: also write collapsed stacks
                       (`frame;frame value` lines, integer µs self-time) —
                       feed to any flamegraph renderer, or inline via
                       `report --trace` (panel-flame)
  --json               machine-readable JSON instead of tables

bench-diff options:
  compares two BENCH_*.json files cell-by-cell (method × dataset ×
  threads); exits 1 when any cell's new/base wall-time ratio exceeds
  the threshold
  --threshold R   regression threshold ratio (default 1.10)
  --json          machine-readable JSON instead of the markdown table

monitor options:
  tails a heartbeat JSONL written by discover/bench --heartbeat-out and
  redraws a terminal view: RSS sparkline, pool hit rate, per-thread busy
  fractions, per-unit progress bars with ETA, and a stall banner; exits
  when the producer writes its run_end record
  --once          render the current state once and exit (no tailing)
  --interval MS   redraw period in follow mode (default 500)";

/// Parsed `discover` arguments.
#[derive(Debug, Clone)]
pub struct DiscoverArgs {
    /// Input CSV path (empty when reading from `store`).
    pub input: String,
    /// Chunked series-store directory to stream from instead of a CSV.
    pub store: Option<String>,
    /// Window budget for store streaming (`StreamOptions::max_windows`).
    pub max_windows: Option<usize>,
    /// Chunk read-ahead for store streaming (`StreamOptions::read_ahead`).
    pub read_ahead: Option<usize>,
    /// Preset name.
    pub preset: String,
    /// Window override.
    pub window: Option<usize>,
    /// Epoch override.
    pub epochs: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Worker-thread override (`cf_par::set_threads`).
    pub threads: Option<usize>,
    /// Compute precision (element type) for training and detection.
    pub dtype: Dtype,
    /// DOT output path.
    pub dot: Option<String>,
    /// Checkpoint output path.
    pub save: Option<String>,
    /// JSONL telemetry output path.
    pub metrics_out: Option<String>,
    /// Chrome trace_event JSON output path.
    pub trace_out: Option<String>,
    /// Model-diagnostics (cfdiag JSONL) output path.
    pub diag_out: Option<String>,
    /// Heartbeat JSONL output path (live runtime telemetry).
    pub heartbeat_out: Option<String>,
    /// Training-checkpoint directory (enables crash-safe training).
    pub checkpoint_dir: Option<String>,
    /// Epochs between checkpoints (requires `checkpoint_dir`).
    pub checkpoint_every: Option<usize>,
    /// Resume from the newest checkpoint in `checkpoint_dir`.
    pub resume: bool,
    /// Log level override (parsed in `run_discover`).
    pub log_level: Option<String>,
    /// Suppress per-epoch progress lines.
    pub quiet: bool,
}

/// Parsed `generate` arguments.
#[derive(Debug, Clone)]
pub struct GenerateArgs {
    /// Dataset name.
    pub dataset: String,
    /// Series length.
    pub length: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output CSV path (empty when only `store_out` is requested).
    pub output: String,
    /// Chunked series-store output directory.
    pub store_out: Option<String>,
    /// Store chunk length in time steps.
    pub chunk_len: usize,
    /// Store chunk codec name.
    pub codec: String,
}

/// A parsed command.
// One instance exists per process invocation, so the size spread between
// `Discover` and the flag-less variants is irrelevant — not worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Command {
    /// `discover` subcommand.
    Discover(DiscoverArgs),
    /// `generate` subcommand.
    Generate(GenerateArgs),
    /// `report` subcommand.
    Report(ReportArgs),
    /// `analyze` subcommand.
    Analyze(AnalyzeArgs),
    /// `bench-diff` subcommand.
    BenchDiff(BenchDiffArgs),
    /// `monitor` subcommand.
    Monitor(MonitorArgs),
    /// `--help`.
    Help,
}

/// Parses the full argument list (program name already stripped).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let rest: Vec<String> = it.cloned().collect();
    match sub {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "discover" => {
            let mut a = DiscoverArgs {
                input: String::new(),
                store: None,
                max_windows: None,
                read_ahead: None,
                preset: "fmri".into(),
                window: None,
                epochs: None,
                seed: 0,
                threads: None,
                dtype: Dtype::F64,
                dot: None,
                save: None,
                metrics_out: None,
                trace_out: None,
                diag_out: None,
                heartbeat_out: None,
                checkpoint_dir: None,
                checkpoint_every: None,
                resume: false,
                log_level: None,
                quiet: false,
            };
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                // Boolean flags take no value.
                if flag == "--quiet" {
                    a.quiet = true;
                    i += 1;
                    continue;
                }
                if flag == "--resume" {
                    a.resume = true;
                    i += 1;
                    continue;
                }
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
                match flag {
                    "--input" => a.input = value.clone(),
                    "--store" => a.store = Some(value.clone()),
                    "--max-windows" => {
                        let n: usize = parse_num(flag, value)?;
                        if n == 0 {
                            return Err(CliError::Usage("--max-windows must be at least 1".into()));
                        }
                        a.max_windows = Some(n);
                    }
                    "--read-ahead" => a.read_ahead = Some(parse_num(flag, value)?),
                    "--preset" => a.preset = value.clone(),
                    "--window" => {
                        a.window = Some(parse_num(flag, value)?);
                    }
                    "--epochs" => {
                        a.epochs = Some(parse_num(flag, value)?);
                    }
                    "--seed" => a.seed = parse_num::<u64>(flag, value)?,
                    "--threads" => {
                        let n: usize = parse_num(flag, value)?;
                        if n == 0 {
                            return Err(CliError::Usage("--threads must be at least 1".into()));
                        }
                        a.threads = Some(n);
                    }
                    "--dtype" => {
                        a.dtype = value.parse().map_err(CliError::Usage)?;
                    }
                    "--dot" => a.dot = Some(value.clone()),
                    "--save" => a.save = Some(value.clone()),
                    "--metrics-out" => a.metrics_out = Some(value.clone()),
                    "--trace-out" => a.trace_out = Some(value.clone()),
                    "--diag-out" => a.diag_out = Some(value.clone()),
                    "--heartbeat-out" => a.heartbeat_out = Some(value.clone()),
                    "--checkpoint-dir" => a.checkpoint_dir = Some(value.clone()),
                    "--checkpoint-every" => {
                        let n: usize = parse_num(flag, value)?;
                        if n == 0 {
                            return Err(CliError::Usage(
                                "--checkpoint-every must be at least 1".into(),
                            ));
                        }
                        a.checkpoint_every = Some(n);
                    }
                    "--log-level" => a.log_level = Some(value.clone()),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
                i += 2;
            }
            if a.input.is_empty() && a.store.is_none() {
                return Err(CliError::Usage(
                    "discover requires --input or --store".into(),
                ));
            }
            if !a.input.is_empty() && a.store.is_some() {
                return Err(CliError::Usage(
                    "--input and --store are mutually exclusive".into(),
                ));
            }
            if a.store.is_none() && (a.max_windows.is_some() || a.read_ahead.is_some()) {
                return Err(CliError::Usage(
                    "--max-windows / --read-ahead require --store".into(),
                ));
            }
            if a.checkpoint_dir.is_none() && (a.resume || a.checkpoint_every.is_some()) {
                return Err(CliError::Usage(
                    "--resume / --checkpoint-every require --checkpoint-dir".into(),
                ));
            }
            Ok(Command::Discover(a))
        }
        "generate" => {
            let mut a = GenerateArgs {
                dataset: String::new(),
                length: 600,
                seed: 0,
                output: String::new(),
                store_out: None,
                chunk_len: 65536,
                codec: "delta-varint".into(),
            };
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
                match flag {
                    "--dataset" => a.dataset = value.clone(),
                    "--length" => a.length = parse_num(flag, value)?,
                    "--seed" => a.seed = parse_num::<u64>(flag, value)?,
                    "--output" => a.output = value.clone(),
                    "--store-out" => a.store_out = Some(value.clone()),
                    "--chunk-len" => {
                        let n: usize = parse_num(flag, value)?;
                        if n == 0 {
                            return Err(CliError::Usage("--chunk-len must be at least 1".into()));
                        }
                        a.chunk_len = n;
                    }
                    "--codec" => a.codec = value.clone(),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
                i += 2;
            }
            if a.dataset.is_empty() || (a.output.is_empty() && a.store_out.is_none()) {
                return Err(CliError::Usage(
                    "generate requires --dataset and one of --output / --store-out".into(),
                ));
            }
            Ok(Command::Generate(a))
        }
        "report" => {
            let mut a = ReportArgs {
                metrics: None,
                trace: None,
                compare_trace: None,
                diag: None,
                out: String::new(),
            };
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
                match flag {
                    "--metrics" => a.metrics = Some(value.clone()),
                    "--trace" => a.trace = Some(value.clone()),
                    "--compare-trace" => a.compare_trace = Some(value.clone()),
                    "--diag" => a.diag = Some(value.clone()),
                    "--out" => a.out = value.clone(),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
                i += 2;
            }
            if a.out.is_empty() {
                return Err(CliError::Usage("report requires --out".into()));
            }
            if a.metrics.is_none() && a.trace.is_none() && a.diag.is_none() {
                return Err(CliError::Usage(
                    "report requires at least one of --metrics, --trace, --diag".into(),
                ));
            }
            if a.compare_trace.is_some() && a.trace.is_none() {
                return Err(CliError::Usage(
                    "--compare-trace requires --trace (the baseline trace)".into(),
                ));
            }
            Ok(Command::Report(a))
        }
        "analyze" => {
            let mut a = AnalyzeArgs::default();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                if flag == "--json" {
                    a.json = true;
                    i += 1;
                    continue;
                }
                if flag == "--compare" {
                    let base = rest
                        .get(i + 1)
                        .ok_or_else(|| CliError::Usage("--compare requires two files".into()))?;
                    let scaled = rest
                        .get(i + 2)
                        .ok_or_else(|| CliError::Usage("--compare requires two files".into()))?;
                    a.compare = Some((base.clone(), scaled.clone()));
                    i += 3;
                    continue;
                }
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
                match flag {
                    "--trace" => a.trace = Some(value.clone()),
                    "--top" => {
                        let n: usize = parse_num(flag, value)?;
                        if n == 0 {
                            return Err(CliError::Usage("--top must be at least 1".into()));
                        }
                        a.top = n;
                    }
                    "--threads-base" => a.threads_base = Some(parse_num(flag, value)?),
                    "--threads-scaled" => a.threads_scaled = Some(parse_num(flag, value)?),
                    "--max-serial-fraction" => {
                        a.max_serial_fraction = Some(parse_num(flag, value)?)
                    }
                    "--flamegraph" => a.flamegraph = Some(value.clone()),
                    other => return Err(CliError::Usage(format!("unknown flag {other}"))),
                }
                i += 2;
            }
            match (&a.trace, &a.compare) {
                (Some(_), None) | (None, Some(_)) => Ok(Command::Analyze(a)),
                _ => Err(CliError::Usage(
                    "analyze requires exactly one of --trace FILE or --compare BASE SCALED".into(),
                )),
            }
        }
        "bench-diff" => {
            let mut a = BenchDiffArgs::default();
            let mut positional = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                if flag == "--json" {
                    a.json = true;
                    i += 1;
                    continue;
                }
                if flag == "--threshold" {
                    let value = rest
                        .get(i + 1)
                        .ok_or_else(|| CliError::Usage("--threshold requires a value".into()))?;
                    a.threshold = parse_num(flag, value)?;
                    i += 2;
                    continue;
                }
                if flag.starts_with("--") {
                    return Err(CliError::Usage(format!("unknown flag {flag}")));
                }
                positional.push(rest[i].clone());
                i += 1;
            }
            let [baseline, new] = positional.as_slice() else {
                return Err(CliError::Usage(
                    "bench-diff requires exactly two files: BASELINE.json NEW.json".into(),
                ));
            };
            a.baseline = baseline.clone();
            a.new = new.clone();
            Ok(Command::BenchDiff(a))
        }
        "monitor" => {
            let mut a = MonitorArgs::default();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                if flag == "--once" {
                    a.once = true;
                    i += 1;
                    continue;
                }
                if flag == "--interval" {
                    let value = rest
                        .get(i + 1)
                        .ok_or_else(|| CliError::Usage("--interval requires a value".into()))?;
                    let ms: u64 = parse_num(flag, value)?;
                    if ms == 0 {
                        return Err(CliError::Usage("--interval must be at least 1".into()));
                    }
                    a.interval_ms = ms;
                    i += 2;
                    continue;
                }
                if flag.starts_with("--") {
                    return Err(CliError::Usage(format!("unknown flag {flag}")));
                }
                if !a.path.is_empty() {
                    return Err(CliError::Usage(
                        "monitor takes exactly one HEARTBEAT.jsonl file".into(),
                    ));
                }
                a.path = rest[i].clone();
                i += 1;
            }
            if a.path.is_empty() {
                return Err(CliError::Usage(
                    "monitor requires a HEARTBEAT.jsonl file".into(),
                ));
            }
            Ok(Command::Monitor(a))
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse {value:?}")))
}

/// Builds the pipeline for a preset name and series count.
pub fn preset_by_name(name: &str, n: usize) -> Result<CausalFormer, CliError> {
    Ok(match name {
        "synthetic-dense" => presets::synthetic_dense(n),
        "synthetic-sparse" => presets::synthetic_sparse(n),
        "lorenz" => presets::lorenz96(n),
        "fmri" => presets::fmri(n),
        "sst" => presets::sst(n),
        other => {
            return Err(CliError::Usage(format!(
                "unknown preset {other:?} (expected synthetic-dense, synthetic-sparse, lorenz, fmri, sst)"
            )))
        }
    })
}

/// Configures logging, the JSONL sink, and op profiling from the parsed
/// `discover` flags. Returns whether a sink was installed.
fn setup_observability(a: &DiscoverArgs) -> Result<bool, CliError> {
    if a.quiet {
        cf_obs::log::set_level(cf_obs::log::Level::Warn);
    } else if let Some(name) = &a.log_level {
        let level = cf_obs::log::Level::parse(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown log level {name:?} (expected off, error, warn, info, debug, trace)"
            ))
        })?;
        cf_obs::log::set_level(level);
    } else if std::env::var_os("CF_LOG").is_none() {
        // Interactive default: show per-epoch progress unless the user
        // opted out via --quiet, --log-level, or CF_LOG.
        cf_obs::log::set_level(cf_obs::log::Level::Info);
    }
    if let Some(path) = &a.metrics_out {
        cf_obs::span::reset();
        cf_obs::metrics::reset();
        cf_obs::profile::reset();
        cf_obs::hist::reset();
        cf_obs::profile::set_enabled(true);
        cf_obs::sink::install_file(path)
            .map_err(|e| CliError::Run(format!("opening {path}: {e}")))?;
        // First record identifies the stream so consumers (`report`) can
        // refuse files newer than they understand. See DESIGN.md for the
        // schema; bump METRICS_SCHEMA_VERSION on breaking changes.
        cf_obs::sink::emit(
            &cf_obs::json::Obj::new()
                .str("event", "meta")
                .str("schema_version", METRICS_SCHEMA_VERSION)
                .str("producer", "causalformer")
                .f64("ts", cf_obs::unix_time())
                .finish(),
        );
        return Ok(true);
    }
    Ok(false)
}

/// Version of the `--metrics-out` JSONL schema, written in the leading
/// `meta` event. Major bumps mean existing consumers must not parse the
/// file; minor bumps are additive. Files without a `meta` event predate
/// versioning and are treated as `1.0`.
///
/// 2.1 (additive): `span_summary` entries carry streaming percentile
/// estimates (`p50_secs`/`p95_secs`/`p99_secs`), and a `span_hist`
/// summary event records the raw fixed-bucket duration histograms
/// (schema `log2us-v1`, see `cf_obs::hist`).
///
/// 2.2 (additive): the same version also stamps the `--heartbeat-out`
/// stream (`meta` / `heartbeat` / `progress` / `run_end` events, see
/// DESIGN.md §5.7); the `--metrics-out` stream is unchanged.
pub const METRICS_SCHEMA_VERSION: &str = "2.2";

/// Executes `discover`, returning the human-readable report that `main`
/// prints.
pub fn run_discover(a: &DiscoverArgs) -> Result<String, CliError> {
    if let Some(n) = a.threads {
        cf_par::set_threads(n);
    }
    let sink_installed = setup_observability(a)?;
    if a.trace_out.is_some() {
        cf_obs::trace::reset();
        cf_obs::trace::set_enabled(true);
    }
    // Live telemetry: the sampler thread runs whenever a heartbeat file is
    // requested, and also (file-less) when CF_WATCHDOG arms the stall
    // watchdog. It only ever *reads* runtime state, so the discovery
    // result is bitwise identical with or without it.
    let heartbeat = if a.heartbeat_out.is_some() || std::env::var_os("CF_WATCHDOG").is_some() {
        cf_tensor::pool::install_obs_sampler();
        cf_obs::heartbeat::reset_progress();
        let cfg = cf_obs::heartbeat::Config::from_env(METRICS_SCHEMA_VERSION);
        let path = a.heartbeat_out.as_ref().map(std::path::Path::new);
        Some(
            cf_obs::heartbeat::start(path, cfg)
                .map_err(|e| CliError::Run(format!("starting heartbeat: {e}")))?,
        )
    } else {
        None
    };
    if let Some(path) = &a.diag_out {
        diag::install_file(std::path::Path::new(path))
            .map_err(|e| CliError::Run(format!("opening {path}: {e}")))?;
    }
    let started = std::time::Instant::now();
    let store = match &a.store {
        Some(dir) => Some(
            SeriesStore::open_dir(dir)
                .map_err(|e| CliError::Run(format!("opening store {dir}: {e}")))?,
        ),
        None => None,
    };
    let (series, names): (Option<Tensor>, Vec<String>) = match &store {
        Some(st) => (
            None,
            (1..=st.manifest().n_series)
                .map(|i| format!("S{i}"))
                .collect(),
        ),
        None => {
            let parsed = csv_io::read_series_csv_file(&a.input)
                .map_err(|e| CliError::Run(format!("reading {}: {e}", a.input)))?;
            (Some(parsed.series), parsed.names)
        }
    };
    let n = names.len();
    let len = match (&store, &series) {
        (Some(st), _) => st.manifest().length,
        (None, Some(s)) => s.shape()[1],
        _ => unreachable!("exactly one series source"),
    };

    let mut cf = preset_by_name(&a.preset, n)?;
    cf.train.dtype = a.dtype;
    if let Some(w) = a.window {
        cf.model.window = w;
    }
    if let Some(e) = a.epochs {
        cf.train.max_epochs = e;
    }
    if cf.model.window >= len {
        return Err(CliError::Run(format!(
            "window {} does not fit series of length {len}",
            cf.model.window
        )));
    }

    let stream_opts = {
        let mut o = StreamOptions::default();
        if let Some(m) = a.max_windows {
            o.max_windows = m;
        }
        if let Some(r) = a.read_ahead {
            o.read_ahead = r;
        }
        o
    };
    let mut rng = StdRng::seed_from_u64(a.seed);
    let result = match (&store, &a.checkpoint_dir) {
        (Some(st), Some(dir)) => {
            let ckpt = CheckpointConfig::new(dir).every(a.checkpoint_every.unwrap_or(1));
            cf.discover_store_resumable(&mut rng, st, &stream_opts, ckpt, a.resume)
                .map_err(|e| CliError::Run(format!("resumable discovery: {e}")))?
        }
        (Some(st), None) => cf
            .discover_store(&mut rng, st, &stream_opts)
            .map_err(|e| CliError::Run(format!("streaming discovery: {e}")))?,
        (None, Some(dir)) => {
            let ckpt = CheckpointConfig::new(dir).every(a.checkpoint_every.unwrap_or(1));
            cf.discover_resumable(
                &mut rng,
                series.as_ref().expect("csv source"),
                ckpt,
                a.resume,
            )
            .map_err(|e| CliError::Run(format!("resumable discovery: {e}")))?
        }
        (None, None) => cf.discover(&mut rng, series.as_ref().expect("csv source")),
    };

    let mut out = String::new();
    out.push_str(&format!(
        "discovered {} causal relations over {n} series ({len} slots):\n",
        result.graph.num_edges()
    ));
    for e in result.graph.edges() {
        let delay = e.delay.map(|d| format!(" (delay {d})")).unwrap_or_default();
        out.push_str(&format!("  {} -> {}{delay}\n", names[e.from], names[e.to]));
    }

    if let Some(path) = &a.dot {
        std::fs::write(path, graph_dot_plain(&result.graph, "discovered"))
            .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
        out.push_str(&format!("DOT graph written to {path}\n"));
    }
    if let Some(path) = &a.save {
        // Retrain once more is wasteful; instead persist by re-running the
        // training stage through the public API, at the run's dtype so the
        // saved parameters match what `discover` trained (`.json` stores
        // f64; `.cft` stores the native dtype).
        let windows = match (&store, &series) {
            (Some(st), _) => {
                let stride = effective_stride(
                    st.manifest().length,
                    cf.model.window,
                    cf.train.stride,
                    stream_opts.max_windows,
                );
                st.standardized_windows(cf.model.window, stride, stream_opts.read_ahead)
                    .and_then(|scan| scan.collect::<Result<Vec<Tensor>, _>>())
                    .map_err(|e| CliError::Run(format!("streaming windows: {e}")))?
            }
            (None, Some(s)) => {
                let std_series = window::standardize(s);
                window::windows(&std_series, cf.model.window, cf.train.stride)
            }
            _ => unreachable!("exactly one series source"),
        };
        let mut rng2 = StdRng::seed_from_u64(a.seed);
        let saved = match a.dtype {
            Dtype::F64 => {
                let (trained, _) = trainer::train(&mut rng2, cf.model, cf.train, &windows);
                persist::save(&trained, path)
            }
            Dtype::F32 => {
                let w32: Vec<TensorBase<f32>> =
                    windows.iter().map(TensorBase::from_f64_tensor).collect();
                let (trained, _) = trainer::train(&mut rng2, cf.model, cf.train, &w32);
                persist::save(&trained, path)
            }
        };
        saved.map_err(|e| CliError::Run(format!("saving model to {path}: {e}")))?;
        out.push_str(&format!("model checkpoint written to {path}\n"));
    }

    if sink_installed {
        cf_obs::sink::emit(
            &cf_obs::json::Obj::new()
                .str("event", "discovery")
                .f64("ts", cf_obs::unix_time())
                .str("input", a.store.as_deref().unwrap_or(a.input.as_str()))
                .str("preset", &a.preset)
                .u64("seed", a.seed)
                .u64("n_series", n as u64)
                .u64("series_len", len as u64)
                .u64("edges", result.graph.num_edges() as u64)
                .u64(
                    "epochs_trained",
                    result.train_report.train_losses.len() as u64,
                )
                .f64("wall_secs", started.elapsed().as_secs_f64())
                .finish(),
        );
        // Sync the buffer pool's counters into the registry so the metrics
        // summary includes mem.pool.* and mem.alloc.count.
        cf_tensor::pool::publish_obs();
        cf_obs::sink::emit_summaries();
        cf_obs::sink::uninstall();
        let path = a.metrics_out.as_deref().unwrap_or("?");
        out.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = &a.diag_out {
        diag::uninstall();
        out.push_str(&format!("diagnostics written to {path}\n"));
    }
    if let Some(path) = &a.trace_out {
        // Final counter samples for the pool track, then stop recording
        // before the drain so the write itself is not traced.
        cf_tensor::pool::publish_obs();
        cf_obs::trace::set_enabled(false);
        cf_obs::export::write_chrome_trace(std::path::Path::new(path))
            .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
        out.push_str(&format!("trace written to {path}\n"));
    }
    if let Some(hb) = heartbeat {
        // Takes one final sample and writes the run_end record so a
        // tailing `monitor` knows the run completed.
        hb.stop();
        if let Some(path) = &a.heartbeat_out {
            out.push_str(&format!("heartbeat written to {path}\n"));
        }
    }
    Ok(out)
}

/// Executes `generate`, returning the report string.
pub fn run_generate(a: &GenerateArgs) -> Result<String, CliError> {
    let mut rng = StdRng::seed_from_u64(a.seed);

    // Pure store output of lorenz96 streams sample-by-sample into the
    // chunked store — the N×L matrix is never materialised, so --length
    // can exceed RAM by orders of magnitude. (With --output too, the CSV
    // needs the matrix anyway, so the in-RAM path below handles both.)
    if let (Some(dir), "lorenz96", true) = (&a.store_out, a.dataset.as_str(), a.output.is_empty()) {
        // Mirrors lorenz96::generate_random_forcing — forcing first, then
        // the trajectory — so the samples are bitwise those of the in-RAM
        // path on the same seed.
        let forcing = rng.gen_range(30.0..=40.0);
        let config = lorenz96::Lorenz96Config {
            n: 10,
            length: a.length,
            forcing,
            ..lorenz96::Lorenz96Config::default()
        };
        let mut writer = SeriesWriter::new(
            Arc::new(FsStorage::new(dir)),
            config.n,
            config.n,
            a.chunk_len,
            &a.codec,
        )
        .map_err(|e| CliError::Run(format!("creating store {dir}: {e}")))?;
        lorenz96::stream(&mut rng, config, |x| writer.append(x))
            .map_err(|e| CliError::Run(format!("writing store {dir}: {e}")))?;
        let manifest = writer
            .finish()
            .map_err(|e| CliError::Run(format!("finishing store {dir}: {e}")))?;
        return Ok(format!(
            "wrote store {dir} ({} series × {} slots, {}×{} chunk grid, codec {}); \
             ground truth: {}\n",
            manifest.n_series,
            manifest.length,
            manifest.v_blocks(),
            manifest.t_blocks(),
            manifest.codec,
            lorenz96::truth(config.n)
        ));
    }

    let dataset = match a.dataset.as_str() {
        "diamond" => synthetic::generate(&mut rng, synthetic::Structure::Diamond, a.length),
        "mediator" => synthetic::generate(&mut rng, synthetic::Structure::Mediator, a.length),
        "v-structure" => synthetic::generate(&mut rng, synthetic::Structure::VStructure, a.length),
        "fork" => synthetic::generate(&mut rng, synthetic::Structure::Fork, a.length),
        "lorenz96" => lorenz96::generate_random_forcing(&mut rng, 10, a.length),
        other => {
            return Err(CliError::Usage(format!(
            "unknown dataset {other:?} (expected diamond, mediator, v-structure, fork, lorenz96)"
        )))
        }
    };
    let names: Vec<String> = (1..=dataset.num_series())
        .map(|i| format!("S{i}"))
        .collect();
    let mut out = String::new();
    if !a.output.is_empty() {
        let mut buf = Vec::new();
        csv_io::write_series_csv(&mut buf, &dataset.series, &names)
            .map_err(|e| CliError::Run(format!("serialising CSV: {e}")))?;
        std::fs::write(&a.output, buf)
            .map_err(|e| CliError::Run(format!("writing {}: {e}", a.output)))?;
        out.push_str(&format!(
            "wrote {} ({} series × {} slots); ground truth: {}\n",
            a.output,
            dataset.num_series(),
            dataset.len(),
            dataset.truth
        ));
    }
    if let Some(dir) = &a.store_out {
        let (n, l) = (dataset.num_series(), dataset.len());
        let mut writer =
            SeriesWriter::new(Arc::new(FsStorage::new(dir)), n, n, a.chunk_len, &a.codec)
                .map_err(|e| CliError::Run(format!("creating store {dir}: {e}")))?;
        let data = dataset.series.data();
        let mut sample = vec![0.0; n];
        for t in 0..l {
            for (i, s) in sample.iter_mut().enumerate() {
                *s = data[i * l + t];
            }
            writer
                .append(&sample)
                .map_err(|e| CliError::Run(format!("writing store {dir}: {e}")))?;
        }
        let manifest = writer
            .finish()
            .map_err(|e| CliError::Run(format!("finishing store {dir}: {e}")))?;
        out.push_str(&format!(
            "wrote store {dir} ({n} series × {l} slots, {}×{} chunk grid, codec {}); \
             ground truth: {}\n",
            manifest.v_blocks(),
            manifest.t_blocks(),
            manifest.codec,
            dataset.truth
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_discover_with_all_flags() {
        let cmd = parse(&s(&[
            "discover",
            "--input",
            "x.csv",
            "--preset",
            "lorenz",
            "--window",
            "8",
            "--epochs",
            "5",
            "--seed",
            "7",
            "--threads",
            "2",
            "--dtype",
            "f32",
            "--dot",
            "g.dot",
            "--save",
            "m.json",
            "--metrics-out",
            "m.jsonl",
            "--trace-out",
            "t.json",
            "--diag-out",
            "d.cfdiag",
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every",
            "2",
            "--resume",
            "--log-level",
            "debug",
            "--quiet",
        ]))
        .unwrap();
        match cmd {
            Command::Discover(a) => {
                assert_eq!(a.input, "x.csv");
                assert_eq!(a.preset, "lorenz");
                assert_eq!(a.window, Some(8));
                assert_eq!(a.epochs, Some(5));
                assert_eq!(a.seed, 7);
                assert_eq!(a.threads, Some(2));
                assert_eq!(a.dtype, Dtype::F32);
                assert_eq!(a.dot.as_deref(), Some("g.dot"));
                assert_eq!(a.save.as_deref(), Some("m.json"));
                assert_eq!(a.metrics_out.as_deref(), Some("m.jsonl"));
                assert_eq!(a.trace_out.as_deref(), Some("t.json"));
                assert_eq!(a.diag_out.as_deref(), Some("d.cfdiag"));
                assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpts"));
                assert_eq!(a.checkpoint_every, Some(2));
                assert!(a.resume);
                assert_eq!(a.log_level.as_deref(), Some("debug"));
                assert!(a.quiet);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn quiet_takes_no_value() {
        // --quiet followed by another flag must not swallow it.
        let cmd = parse(&s(&["discover", "--quiet", "--input", "x.csv"])).unwrap();
        match cmd {
            Command::Discover(a) => {
                assert!(a.quiet);
                assert_eq!(a.input, "x.csv");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn resume_requires_checkpoint_dir() {
        for args in [
            vec!["discover", "--input", "x.csv", "--resume"],
            vec!["discover", "--input", "x.csv", "--checkpoint-every", "2"],
        ] {
            match parse(&s(&args)) {
                Err(CliError::Usage(m)) => assert!(m.contains("--checkpoint-dir"), "{m}"),
                other => panic!("expected a usage error, got {other:?}"),
            }
        }
        assert!(matches!(
            parse(&s(&[
                "discover",
                "--input",
                "x.csv",
                "--checkpoint-dir",
                "d",
                "--checkpoint-every",
                "0"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn dtype_defaults_to_f64_and_rejects_unknown_names() {
        let cmd = parse(&s(&["discover", "--input", "x.csv"])).unwrap();
        match cmd {
            Command::Discover(a) => assert_eq!(a.dtype, Dtype::F64),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&s(&["discover", "--input", "x.csv", "--dtype", "f16"])) {
            Err(CliError::Usage(m)) => assert!(m.contains("unknown dtype"), "{m}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_input_and_unknown_flags() {
        assert!(matches!(parse(&s(&["discover"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&s(&["discover", "--wat", "x"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&s(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn no_args_means_help() {
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
        assert!(matches!(parse(&s(&["--help"])).unwrap(), Command::Help));
    }

    #[test]
    fn preset_names_resolve() {
        for name in [
            "synthetic-dense",
            "synthetic-sparse",
            "lorenz",
            "fmri",
            "sst",
        ] {
            assert!(preset_by_name(name, 4).is_ok(), "{name}");
        }
        assert!(matches!(preset_by_name("nope", 4), Err(CliError::Usage(_))));
    }

    #[test]
    fn generate_then_discover_end_to_end() {
        let dir = std::env::temp_dir();
        let csv_path = dir.join("cf_cli_test_fork.csv");
        let dot_path = dir.join("cf_cli_test_fork.dot");
        let gen = GenerateArgs {
            dataset: "fork".into(),
            length: 200,
            seed: 1,
            output: csv_path.to_string_lossy().into_owned(),
            store_out: None,
            chunk_len: 65536,
            codec: "delta-varint".into(),
        };
        let report = run_generate(&gen).unwrap();
        assert!(report.contains("3 series"));

        let metrics_path = dir.join("cf_cli_test_fork.jsonl");
        let disc = DiscoverArgs {
            input: csv_path.to_string_lossy().into_owned(),
            store: None,
            max_windows: None,
            read_ahead: None,
            preset: "synthetic-sparse".into(),
            window: Some(8),
            epochs: Some(3),
            seed: 1,
            threads: None,
            dtype: Dtype::F64,
            dot: Some(dot_path.to_string_lossy().into_owned()),
            save: None,
            metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
            trace_out: None,
            diag_out: None,
            heartbeat_out: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            log_level: None,
            quiet: true,
        };
        let report = run_discover(&disc).unwrap();
        assert!(
            report.contains("causal relations over 3 series"),
            "{report}"
        );
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("digraph"));

        // The telemetry file holds stage spans, one record per epoch, the
        // op profile, and the discovery summary — one JSON object per line.
        let telemetry = std::fs::read_to_string(&metrics_path).unwrap();
        let events: Vec<&str> = telemetry.lines().collect();
        let count = |kind: &str| {
            events
                .iter()
                .filter(|l| l.contains(&format!("\"event\":\"{kind}\"")))
                .count()
        };
        assert_eq!(count("meta"), 1, "{telemetry}");
        assert!(
            events[0].contains(&format!("\"schema_version\":\"{METRICS_SCHEMA_VERSION}\"")),
            "meta must be the first event: {telemetry}"
        );
        assert_eq!(count("epoch"), 3, "{telemetry}");
        assert_eq!(count("stage"), 3, "{telemetry}"); // windowing, train, detect
        assert_eq!(count("discovery"), 1, "{telemetry}");
        assert_eq!(count("op_profile"), 1, "{telemetry}");
        assert_eq!(count("span_summary"), 1, "{telemetry}");
        assert!(telemetry.contains("\"op\":\"matmul\""), "{telemetry}");

        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_file(&dot_path).ok();
        std::fs::remove_file(&metrics_path).ok();
    }

    #[test]
    fn parses_store_flags_and_their_constraints() {
        let cmd = parse(&s(&[
            "discover",
            "--store",
            "data.cfstore",
            "--max-windows",
            "128",
            "--read-ahead",
            "3",
        ]))
        .unwrap();
        match cmd {
            Command::Discover(a) => {
                assert!(a.input.is_empty());
                assert_eq!(a.store.as_deref(), Some("data.cfstore"));
                assert_eq!(a.max_windows, Some(128));
                assert_eq!(a.read_ahead, Some(3));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --input and --store are mutually exclusive; streaming knobs
        // require --store.
        assert!(matches!(
            parse(&s(&["discover", "--input", "x.csv", "--store", "d"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&s(&["discover", "--input", "x.csv", "--max-windows", "9"])),
            Err(CliError::Usage(_))
        ));

        let cmd = parse(&s(&[
            "generate",
            "--dataset",
            "lorenz96",
            "--store-out",
            "d.cfstore",
            "--chunk-len",
            "512",
            "--codec",
            "delta",
        ]))
        .unwrap();
        match cmd {
            Command::Generate(a) => {
                assert!(a.output.is_empty());
                assert_eq!(a.store_out.as_deref(), Some("d.cfstore"));
                assert_eq!(a.chunk_len, 512);
                assert_eq!(a.codec, "delta");
            }
            other => panic!("wrong command {other:?}"),
        }
        // Neither output nor store-out → usage error.
        assert!(matches!(
            parse(&s(&["generate", "--dataset", "fork"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn generate_store_then_discover_store_end_to_end() {
        let dir = std::env::temp_dir();
        let store_dir = dir.join(format!("cf_cli_test_store_{}", std::process::id()));
        let csv_path = dir.join(format!("cf_cli_test_store_{}.csv", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);

        // Write the same fork dataset as CSV *and* chunked store…
        let report = run_generate(&GenerateArgs {
            dataset: "fork".into(),
            length: 200,
            seed: 3,
            output: csv_path.to_string_lossy().into_owned(),
            store_out: Some(store_dir.to_string_lossy().into_owned()),
            chunk_len: 64, // ragged tail: 200 = 3×64 + 8
            codec: "delta-varint".into(),
        })
        .unwrap();
        assert!(report.contains("wrote store"), "{report}");
        assert!(store_dir.join("manifest.json").exists());

        // …and check discovery from either source prints the same graph.
        let base = DiscoverArgs {
            input: String::new(),
            store: None,
            max_windows: None,
            read_ahead: None,
            preset: "synthetic-sparse".into(),
            window: Some(8),
            epochs: Some(3),
            seed: 3,
            threads: None,
            dtype: Dtype::F64,
            dot: None,
            save: None,
            metrics_out: None,
            trace_out: None,
            diag_out: None,
            heartbeat_out: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            log_level: None,
            quiet: true,
        };
        let from_csv = run_discover(&DiscoverArgs {
            input: csv_path.to_string_lossy().into_owned(),
            ..base.clone()
        })
        .unwrap();
        let from_store = run_discover(&DiscoverArgs {
            store: Some(store_dir.to_string_lossy().into_owned()),
            ..base
        })
        .unwrap();
        assert_eq!(from_csv, from_store, "store and CSV discovery disagree");

        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_dir_all(&store_dir).ok();
    }

    #[test]
    fn lorenz96_streaming_store_matches_in_ram_generate() {
        let dir = std::env::temp_dir();
        let streamed_dir = dir.join(format!("cf_cli_test_l96s_{}", std::process::id()));
        let in_ram_dir = dir.join(format!("cf_cli_test_l96r_{}", std::process::id()));
        let csv_path = dir.join(format!("cf_cli_test_l96_{}.csv", std::process::id()));
        let _ = std::fs::remove_dir_all(&streamed_dir);
        let _ = std::fs::remove_dir_all(&in_ram_dir);

        // Store-only lorenz96 takes the streaming path…
        run_generate(&GenerateArgs {
            dataset: "lorenz96".into(),
            length: 300,
            seed: 5,
            output: String::new(),
            store_out: Some(streamed_dir.to_string_lossy().into_owned()),
            chunk_len: 128,
            codec: "delta-varint".into(),
        })
        .unwrap();
        // …CSV+store takes the in-RAM path; both stores must hold the
        // bitwise-identical trajectory.
        run_generate(&GenerateArgs {
            dataset: "lorenz96".into(),
            length: 300,
            seed: 5,
            output: csv_path.to_string_lossy().into_owned(),
            store_out: Some(in_ram_dir.to_string_lossy().into_owned()),
            chunk_len: 128,
            codec: "delta-varint".into(),
        })
        .unwrap();

        let a = SeriesStore::open_dir(&streamed_dir)
            .unwrap()
            .read_all()
            .unwrap();
        let b = SeriesStore::open_dir(&in_ram_dir)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(a, b, "streaming and in-RAM lorenz96 trajectories differ");

        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_dir_all(&streamed_dir).ok();
        std::fs::remove_dir_all(&in_ram_dir).ok();
    }

    #[test]
    fn discover_rejects_oversized_window() {
        let dir = std::env::temp_dir();
        let csv_path = dir.join("cf_cli_test_short.csv");
        std::fs::write(&csv_path, "1,2\n3,4\n5,6\n").unwrap();
        let disc = DiscoverArgs {
            input: csv_path.to_string_lossy().into_owned(),
            store: None,
            max_windows: None,
            read_ahead: None,
            preset: "fmri".into(),
            window: Some(100),
            epochs: Some(1),
            seed: 0,
            threads: None,
            dtype: Dtype::F64,
            dot: None,
            save: None,
            metrics_out: None,
            trace_out: None,
            diag_out: None,
            heartbeat_out: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
            log_level: None,
            quiet: true,
        };
        assert!(matches!(run_discover(&disc), Err(CliError::Run(_))));
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn checkpointed_discover_resumes_to_same_graph() {
        let dir = std::env::temp_dir();
        let csv_path = dir.join("cf_cli_test_ckpt.csv");
        let ckpt_dir = dir.join(format!("cf_cli_test_ckpts_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        run_generate(&GenerateArgs {
            dataset: "fork".into(),
            length: 200,
            seed: 2,
            output: csv_path.to_string_lossy().into_owned(),
            store_out: None,
            chunk_len: 65536,
            codec: "delta-varint".into(),
        })
        .unwrap();

        let mut disc = DiscoverArgs {
            input: csv_path.to_string_lossy().into_owned(),
            store: None,
            max_windows: None,
            read_ahead: None,
            preset: "synthetic-sparse".into(),
            window: Some(8),
            epochs: Some(3),
            seed: 2,
            threads: None,
            dtype: Dtype::F64,
            dot: None,
            save: None,
            metrics_out: None,
            trace_out: None,
            diag_out: None,
            heartbeat_out: None,
            checkpoint_dir: Some(ckpt_dir.to_string_lossy().into_owned()),
            checkpoint_every: None,
            resume: false,
            log_level: None,
            quiet: true,
        };
        let first = run_discover(&disc).unwrap();
        assert!(std::fs::read_dir(&ckpt_dir).unwrap().count() > 0);

        // Re-running with --resume restores epoch 3's state (nothing left
        // to train) and must print the identical graph.
        disc.resume = true;
        let second = run_discover(&disc).unwrap();
        assert_eq!(first, second);

        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_dir_all(&ckpt_dir).ok();
    }
}
