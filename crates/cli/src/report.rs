//! `causalformer report` — a self-contained HTML dashboard.
//!
//! Renders the three artifacts a `discover` run can write into one file
//! with no external assets (inline SVG, inline CSS, no scripts):
//!
//! * `--metrics` (JSONL telemetry) → training-loss curves and buffer-pool
//!   hit/miss trajectories;
//! * `--diag` (cfdiag JSONL) → causal-matrix-evolution small multiples;
//! * `--trace` (Chrome trace_event JSON) → per-thread span timelines with
//!   busy fractions.
//!
//! Every panel keeps a stable element id (`panel-training-loss`,
//! `panel-causal-evolution`, `panel-thread-utilization`, `panel-pool`,
//! `panel-top-self-time`, `panel-flame`, `panel-percentiles`,
//! `panel-scaling`, `panel-scheduler`) so smoke tests can assert
//! presence; a panel whose input is missing or empty renders an
//! explanatory note instead of a chart.
//!
//! Trace analysis (self-time aggregation, scaling attribution) is
//! delegated to [`cf_obs::analyze`]; this module only renders.
//!
//! The metrics stream is versioned (leading `meta` event, see
//! [`crate::METRICS_SCHEMA_VERSION`]): files with a newer major version
//! are refused with a clear error rather than misread; files without a
//! `meta` event are treated as legacy `1.0` and parsed best-effort.

use crate::analyze::load_chrome_trace;
use crate::CliError;
use cf_obs::analyze::{
    aggregate, busy_us, collapse_stacks, scaling_attribution, Span as TraceSpan,
    Thread as TraceThread, Trace,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed `report` arguments.
#[derive(Debug, Clone)]
pub struct ReportArgs {
    /// JSONL telemetry path (`discover --metrics-out`).
    pub metrics: Option<String>,
    /// Chrome trace path (`discover --trace-out`).
    pub trace: Option<String>,
    /// Second trace of the same workload at a higher thread count;
    /// enables the scaling-attribution panel.
    pub compare_trace: Option<String>,
    /// Diagnostics path (`discover --diag-out`).
    pub diag: Option<String>,
    /// HTML output path.
    pub out: String,
}

/// Highest metrics-schema major version this renderer understands.
const SUPPORTED_METRICS_MAJOR: u64 = 2;

/// One `epoch` event from the metrics stream.
struct EpochRow {
    train_loss: f64,
    val_loss: f64,
    pool_hit: Option<u64>,
    pool_miss: Option<u64>,
}

/// The `discovery` summary event, for the report header line.
struct Discovery {
    input: String,
    preset: String,
    n_series: u64,
    edges: u64,
    wall_secs: f64,
}

/// Streaming percentile estimates for one span path, from the
/// `span_summary` event (schema ≥ 2.1).
struct SpanPercentiles {
    span: String,
    count: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Everything the report uses from the metrics JSONL.
struct Metrics {
    schema_version: String,
    epochs: Vec<EpochRow>,
    discovery: Option<Discovery>,
    span_percentiles: Vec<SpanPercentiles>,
    /// `par.*` scheduler counters/gauges from the end-of-run
    /// `metrics_summary` snapshot, in emission (sorted-name) order.
    scheduler: Vec<(String, f64)>,
}

/// One `epoch` record from the cfdiag stream.
struct DiagEpoch {
    epoch: u64,
    train_loss: f64,
    val_loss: f64,
    causal: Vec<Vec<f64>>,
}

/// Everything the report uses from the cfdiag JSONL.
struct Diag {
    epochs: Vec<DiagEpoch>,
    detect_attn: Option<Vec<Vec<f64>>>,
}

/// Executes `report`, returning the line `main` prints.
pub fn run_report(a: &ReportArgs) -> Result<String, CliError> {
    let metrics = match &a.metrics {
        Some(path) => Some(load_metrics(path)?),
        None => None,
    };
    let diag = match &a.diag {
        Some(path) => Some(load_diag(path)?),
        None => None,
    };
    let trace = match &a.trace {
        Some(path) => Some(load_chrome_trace(path)?),
        None => None,
    };
    let compare = match &a.compare_trace {
        Some(path) => Some(load_chrome_trace(path)?),
        None => None,
    };
    let html = render_html(
        metrics.as_ref(),
        diag.as_ref(),
        trace.as_ref(),
        compare.as_ref(),
    );
    std::fs::write(&a.out, &html).map_err(|e| CliError::Run(format!("writing {}: {e}", a.out)))?;
    Ok(format!(
        "report written to {} ({} bytes)\n",
        a.out,
        html.len()
    ))
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Run(format!("reading {path}: {e}")))
}

fn f(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn u(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

fn s(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Reads a JSON `[[f64]]` field into a rectangular matrix.
fn matrix(v: &Value, key: &str) -> Option<Vec<Vec<f64>>> {
    let rows = v.get(key)?.as_array()?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        out.push(
            row.as_array()?
                .iter()
                .map(|x| x.as_f64().unwrap_or(0.0))
                .collect(),
        );
    }
    Some(out)
}

fn load_metrics(path: &str) -> Result<Metrics, CliError> {
    let text = read(path)?;
    let mut m = Metrics {
        schema_version: "1.0".into(),
        epochs: Vec::new(),
        discovery: None,
        span_percentiles: Vec::new(),
        scheduler: Vec::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| CliError::Run(format!("{path}:{}: bad JSON: {e}", lineno + 1)))?;
        match s(&v, "event").as_deref() {
            Some("meta") => {
                if let Some(ver) = s(&v, "schema_version") {
                    let major: u64 = ver
                        .split('.')
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| {
                            CliError::Run(format!("{path}: unparseable schema_version {ver:?}"))
                        })?;
                    if major > SUPPORTED_METRICS_MAJOR {
                        return Err(CliError::Run(format!(
                            "{path}: metrics schema_version {ver} is newer than this tool \
                             understands (major {SUPPORTED_METRICS_MAJOR}); re-run report \
                             with a matching causalformer build"
                        )));
                    }
                    m.schema_version = ver;
                }
            }
            Some("epoch") => m.epochs.push(EpochRow {
                train_loss: f(&v, "train_loss").unwrap_or(f64::NAN),
                val_loss: f(&v, "val_loss").unwrap_or(f64::NAN),
                pool_hit: u(&v, "pool_hit"),
                pool_miss: u(&v, "pool_miss"),
            }),
            Some("discovery") => {
                m.discovery = Some(Discovery {
                    input: s(&v, "input").unwrap_or_default(),
                    preset: s(&v, "preset").unwrap_or_default(),
                    n_series: u(&v, "n_series").unwrap_or(0),
                    edges: u(&v, "edges").unwrap_or(0),
                    wall_secs: f(&v, "wall_secs").unwrap_or(0.0),
                });
            }
            Some("span_summary") => {
                // Percentiles appear from schema 2.1; absent fields
                // simply keep the panel on its fallback note.
                for sp in v
                    .get("spans")
                    .and_then(Value::as_array)
                    .map(Vec::as_slice)
                    .unwrap_or_default()
                {
                    let (Some(span), Some(p50), Some(p95), Some(p99)) = (
                        s(sp, "span"),
                        f(sp, "p50_secs"),
                        f(sp, "p95_secs"),
                        f(sp, "p99_secs"),
                    ) else {
                        continue;
                    };
                    m.span_percentiles.push(SpanPercentiles {
                        span,
                        count: u(sp, "count").unwrap_or(0),
                        p50_us: p50 * 1e6,
                        p95_us: p95 * 1e6,
                        p99_us: p99 * 1e6,
                    });
                }
            }
            Some("metrics_summary") => {
                // Work-stealing scheduler telemetry: every `par.*`
                // counter and gauge from the snapshot. The summary is
                // emitted once at the end of a run; if several appear
                // (concatenated files), the last one wins.
                let mut rows = Vec::new();
                for section in ["counters", "gauges"] {
                    if let Some(Value::Object(fields)) =
                        v.get("metrics").and_then(|m| m.get(section))
                    {
                        for (name, val) in fields {
                            if let (true, Some(x)) = (name.starts_with("par."), val.as_f64()) {
                                rows.push((name.clone(), x));
                            }
                        }
                    }
                }
                if !rows.is_empty() {
                    m.scheduler = rows;
                }
            }
            _ => {}
        }
    }
    Ok(m)
}

fn load_diag(path: &str) -> Result<Diag, CliError> {
    let text = read(path)?;
    let mut d = Diag {
        epochs: Vec::new(),
        detect_attn: None,
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| CliError::Run(format!("{path}:{}: bad JSON: {e}", lineno + 1)))?;
        match s(&v, "record").as_deref() {
            Some("header") => {
                let format = s(&v, "format").unwrap_or_default();
                if format != "cfdiag" {
                    return Err(CliError::Run(format!(
                        "{path}: not a cfdiag file (format {format:?})"
                    )));
                }
            }
            Some("epoch") => {
                if let Some(causal) = matrix(&v, "causal_proxy") {
                    d.epochs.push(DiagEpoch {
                        epoch: u(&v, "epoch").unwrap_or(0),
                        train_loss: f(&v, "train_loss").unwrap_or(f64::NAN),
                        val_loss: f(&v, "val_loss").unwrap_or(f64::NAN),
                        causal,
                    });
                }
            }
            Some("detect") => d.detect_attn = matrix(&v, "attn"),
            _ => {}
        }
    }
    Ok(d)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Sequential blue ramp (light→dark), used for the heatmap magnitude scale.
const RAMP: [&str; 13] = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7", "#3987e5", "#2a78d6",
    "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
];

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Short human number: trims trailing zeros, switches to scientific
/// notation outside a comfortable range.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "—".into();
    }
    let a = v.abs();
    if v == 0.0 {
        return "0".into();
    }
    let text = if !(0.001..10_000.0).contains(&a) {
        format!("{v:.1e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    };
    if text.contains('.') && !text.contains('e') {
        text.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        text
    }
}

/// Duration in microseconds → human string.
fn fmt_dur(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2} s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1} ms", us / 1_000.0)
    } else {
        format!("{us:.0} µs")
    }
}

/// One line-chart series: display name, CSS color variable, y values
/// (x is the 1-based epoch index).
struct Series<'a> {
    name: &'a str,
    color: &'a str,
    ys: Vec<f64>,
}

/// An inline-SVG line chart: one y axis, horizontal hairline grid, 2px
/// lines, point markers with native tooltips. Returns the `<svg>` plus a
/// legend row when there are two or more series.
fn line_chart(series: &[Series], y_label: &str) -> String {
    let n = series.iter().map(|s| s.ys.len()).max().unwrap_or(0);
    if n == 0 {
        return note("no data points");
    }
    let (w, h) = (660.0, 280.0);
    let (ml, mr, mt, mb) = (64.0, 14.0, 16.0, 34.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|s| s.ys.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return note("no finite data points");
    }
    let mut lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi - lo < 1e-12 {
        let pad = lo.abs().max(0.5) * 0.1;
        lo -= pad;
        hi += pad;
    } else {
        let pad = (hi - lo) * 0.06;
        // Never pad a non-negative quantity (a loss, a counter) below zero.
        lo = if lo >= 0.0 {
            (lo - pad).max(0.0)
        } else {
            lo - pad
        };
        hi += pad;
    }
    let x_at = |i: usize| ml + pw * i as f64 / (n - 1).max(1) as f64;
    let y_at = |v: f64| mt + ph * (1.0 - (v - lo) / (hi - lo));

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {w} {h}" role="img" aria-label="{}">"#,
        esc(y_label)
    );
    // Horizontal grid + y tick labels.
    for i in 0..5 {
        let v = lo + (hi - lo) * i as f64 / 4.0;
        let y = y_at(v);
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" class="grid"/><text x="{:.1}" y="{:.1}" class="tick" text-anchor="end">{}</text>"#,
            w - mr,
            ml - 8.0,
            y + 3.5,
            fmt_num(v)
        );
    }
    // Baseline + x ticks (1-based epoch numbers, at most ~7 labels).
    let _ = write!(
        svg,
        r#"<line x1="{ml}" y1="{:.1}" x2="{:.1}" y2="{:.1}" class="baseline"/>"#,
        h - mb,
        w - mr,
        h - mb
    );
    let step = n.div_ceil(7).max(1);
    for i in (0..n).step_by(step) {
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" class="tick" text-anchor="middle">{}</text>"#,
            x_at(i),
            h - mb + 16.0,
            i + 1
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" class="tick" text-anchor="middle">epoch</text>"#,
        ml + pw / 2.0,
        h - 4.0
    );
    // Series lines + markers.
    for sr in series {
        let mut points = String::new();
        for (i, &v) in sr.ys.iter().enumerate() {
            if v.is_finite() {
                let _ = write!(points, "{:.1},{:.1} ", x_at(i), y_at(v));
            }
        }
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="var({})" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>"#,
            points.trim_end(),
            sr.color
        );
        for (i, &v) in sr.ys.iter().enumerate() {
            if v.is_finite() {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="var({})"><title>{} — epoch {}: {}</title></circle>"#,
                    x_at(i),
                    y_at(v),
                    sr.color,
                    esc(sr.name),
                    i + 1,
                    fmt_num(v)
                );
            }
        }
    }
    svg.push_str("</svg>");
    let mut out = String::new();
    if series.len() >= 2 {
        out.push_str(r#"<div class="legend">"#);
        for sr in series {
            let _ = write!(
                out,
                r#"<span class="key"><span class="swatch" style="background:var({})"></span>{}</span>"#,
                sr.color,
                esc(sr.name)
            );
        }
        out.push_str("</div>");
    }
    out.push_str(&svg);
    out
}

/// A muted inline note used where a panel has no data.
fn note(text: &str) -> String {
    format!(r#"<p class="note">{}</p>"#, esc(text))
}

/// One n×n heatmap tile (sequential blue ramp, shared `vmax` scale).
fn heat_tile(m: &[Vec<f64>], vmax: f64, label: &str) -> String {
    let n = m.len();
    if n == 0 {
        return String::new();
    }
    let cell = (120 / n).clamp(8, 22) as f64;
    let side = cell * n as f64;
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<div class="tile"><svg viewBox="0 0 {side} {side}" width="{side}" height="{side}" role="img" aria-label="{}">"#,
        esc(label)
    );
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let t = if vmax > 0.0 {
                (v / vmax).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let color = RAMP[(t * (RAMP.len() - 1) as f64).round() as usize];
            let _ = write!(
                svg,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{color}"><title>S{}→S{}: {}</title></rect>"#,
                j as f64 * cell,
                i as f64 * cell,
                cell - 1.0,
                cell - 1.0,
                i + 1,
                j + 1,
                fmt_num(v)
            );
        }
    }
    let _ = write!(
        svg,
        r#"</svg><div class="tile-label">{}</div></div>"#,
        esc(label)
    );
    svg
}

/// Small-multiples view of the causal proxy matrix across epochs, plus
/// the final aggregated score matrix, plus the shared color-scale key.
fn causal_evolution(diag: &Diag) -> String {
    if diag.epochs.is_empty() && diag.detect_attn.is_none() {
        return note("no diagnostics records (run discover with --diag-out)");
    }
    // At most 8 evenly-spaced epochs, oldest to newest.
    let len = diag.epochs.len();
    let mut picks: Vec<usize> = if len <= 8 {
        (0..len).collect()
    } else {
        (0..8).map(|i| i * (len - 1) / 7).collect()
    };
    picks.dedup();
    let vmax = picks
        .iter()
        .flat_map(|&i| diag.epochs[i].causal.iter().flatten().copied())
        .fold(0.0f64, f64::max);
    let mut out = String::from(r#"<div class="tiles">"#);
    for &i in &picks {
        let e = &diag.epochs[i];
        out.push_str(&heat_tile(&e.causal, vmax, &format!("epoch {}", e.epoch)));
    }
    if let Some(attn) = &diag.detect_attn {
        let amax = attn.iter().flatten().copied().fold(0.0f64, f64::max);
        out.push_str(&heat_tile(attn, amax, "final scores"));
    }
    out.push_str("</div>");
    // Color-scale key for the epoch tiles (the final-scores tile is
    // normalised to its own maximum, stated in its tooltips).
    if vmax > 0.0 {
        let mut key = String::from(
            r#"<div class="ramp"><span class="tick">0</span><svg viewBox="0 0 130 10" width="130" height="10">"#,
        );
        for (i, c) in RAMP.iter().enumerate() {
            let _ = write!(
                key,
                r#"<rect x="{}" y="0" width="10" height="10" fill="{c}"/>"#,
                i * 10
            );
        }
        let _ = write!(
            key,
            r#"</svg><span class="tick">{}</span> mean |mask|</div>"#,
            fmt_num(vmax)
        );
        out.push_str(&key);
    }
    out
}

/// Maximum spans drawn per thread row; the longest are kept so visual
/// weight is preserved when a trace is dense.
const MAX_SPANS_PER_ROW: usize = 800;

/// Per-thread span timeline with busy-percentage readouts.
fn thread_timeline(trace: &Trace) -> String {
    let threads: Vec<&TraceThread> = trace
        .threads
        .iter()
        .filter(|t| !t.spans.is_empty())
        .collect();
    if threads.is_empty() {
        // Say what the file *did* contain (counters only, dropped
        // events, nothing) instead of rendering a blank lane.
        return note(
            &trace
                .empty_diagnostic()
                .unwrap_or_else(|| "no spans in trace (run discover with --trace-out)".into()),
        );
    }
    let t0 = threads
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.ts_us))
        .fold(f64::INFINITY, f64::min);
    let t1 = threads
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.ts_us + s.dur_us))
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (t1 - t0).max(1e-9);
    let (w, gutter, right) = (660.0, 150.0, 52.0);
    let (row_h, gap, top) = (16.0, 8.0, 4.0);
    let lane_w = w - gutter - right;
    let h = top + threads.len() as f64 * (row_h + gap) + 24.0;
    let total_spans: usize = threads.iter().map(|t| t.spans.len()).sum();
    let mut drawn = 0usize;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {w} {h:.0}" role="img" aria-label="thread timelines">"#
    );
    for (row, t) in threads.iter().enumerate() {
        let y = top + row as f64 * (row_h + gap);
        let busy = busy_us(&t.spans);
        let pct = 100.0 * busy / range;
        let label: String = t.name.chars().take(18).collect();
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" class="tick" text-anchor="end">{}<title>{} (tid {})</title></text>"#,
            gutter - 8.0,
            y + row_h - 4.0,
            esc(&label),
            esc(&t.name),
            t.tid
        );
        let _ = write!(
            svg,
            r#"<rect x="{gutter}" y="{y:.1}" width="{lane_w:.1}" height="{row_h}" class="lane"/>"#
        );
        // Keep the longest spans when capped; draw order doesn't matter.
        let mut spans: Vec<&TraceSpan> = t.spans.iter().collect();
        if spans.len() > MAX_SPANS_PER_ROW {
            spans.sort_by(|a, b| b.dur_us.total_cmp(&a.dur_us));
            spans.truncate(MAX_SPANS_PER_ROW);
        }
        drawn += spans.len();
        for sp in spans {
            let x = gutter + lane_w * (sp.ts_us - t0) / range;
            let sw = (lane_w * sp.dur_us / range).max(0.75);
            let _ = write!(
                svg,
                r#"<rect x="{x:.2}" y="{:.1}" width="{sw:.2}" height="{:.1}" class="span"><title>{}: {} at +{}</title></rect>"#,
                y + 2.0,
                row_h - 4.0,
                esc(&sp.name),
                fmt_dur(sp.dur_us),
                fmt_dur(sp.ts_us - t0)
            );
        }
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" class="tick">{pct:.0}%</text>"#,
            gutter + lane_w + 6.0,
            y + row_h - 4.0
        );
    }
    // Time axis: start, midpoint, end.
    let axis_y = h - 18.0;
    let _ = write!(
        svg,
        r#"<line x1="{gutter}" y1="{:.1}" x2="{:.1}" y2="{:.1}" class="baseline"/>"#,
        axis_y,
        gutter + lane_w,
        axis_y
    );
    for (frac, anchor) in [(0.0, "start"), (0.5, "middle"), (1.0, "end")] {
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" class="tick" text-anchor="{anchor}">{}</text>"#,
            gutter + lane_w * frac,
            axis_y + 14.0,
            fmt_dur(range * frac)
        );
    }
    svg.push_str("</svg>");
    let mut out = svg;
    if drawn < total_spans {
        out.push_str(&note(&format!(
            "dense trace: showing the longest {drawn} of {total_spans} spans"
        )));
    }
    if trace.dropped > 0 {
        out.push_str(&note(&format!(
            "{} events were dropped by the bounded recorder (raise capacity via cf_obs::trace::set_capacity)",
            trace.dropped
        )));
    }
    out
}

/// Rows shown in the self-time and percentile tables.
const MAX_TABLE_ROWS: usize = 12;

/// Top self-time table from the trace (delegates the span-aggregation
/// math to `cf_obs::analyze::aggregate`).
fn self_time_table(trace: &Trace) -> String {
    if let Some(diag) = trace.empty_diagnostic() {
        return note(&diag);
    }
    let agg = aggregate(trace);
    let total_self: f64 = agg.iter().map(|s| s.self_us).sum();
    let mut out = String::from(
        r#"<table><thead><tr><th>span</th><th class="num">count</th><th class="num">total</th><th class="num">self</th><th class="num">self %</th></tr></thead><tbody>"#,
    );
    for st in agg.iter().take(MAX_TABLE_ROWS) {
        let _ = write!(
            out,
            r#"<tr><td>{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{:.0}%</td></tr>"#,
            esc(&st.name),
            st.count,
            fmt_dur(st.total_us),
            fmt_dur(st.self_us),
            100.0 * st.self_us / total_self.max(1e-9)
        );
    }
    out.push_str("</tbody></table>");
    if agg.len() > MAX_TABLE_ROWS {
        out.push_str(&note(&format!(
            "{} more span name(s) below the cut",
            agg.len() - MAX_TABLE_ROWS
        )));
    }
    out
}

/// Maximum stack depth the flame panel draws; deeper frames are folded
/// into their parent's self time visually (tooltips still carry the
/// full path down to this depth).
const MAX_FLAME_DEPTH: usize = 12;

/// Inline-SVG icicle flamegraph (roots on top, callees below) built
/// from the trace's collapsed stacks. The same fold feeds
/// `analyze --flamegraph`, so the panel and the exported `.folded`
/// file always agree.
fn flame_panel(trace: &Trace) -> String {
    if let Some(diag) = trace.empty_diagnostic() {
        return note(&diag);
    }

    // Reassemble the folded paths into a tree; sibling order is the
    // lexical frame order BTreeMap gives, so renders are deterministic.
    #[derive(Default)]
    struct Node {
        self_us: f64,
        total_us: f64,
        children: BTreeMap<String, Node>,
    }
    let mut root = Node::default();
    for fs in collapse_stacks(trace) {
        let mut cur = &mut root;
        for frame in &fs.frames {
            cur = cur.children.entry(frame.clone()).or_default();
        }
        cur.self_us += fs.self_us;
    }
    fn fill_totals(n: &mut Node) -> f64 {
        n.total_us = n.self_us + n.children.values_mut().map(fill_totals).sum::<f64>();
        n.total_us
    }
    fn depth_of(n: &Node) -> usize {
        1 + n.children.values().map(depth_of).max().unwrap_or(0)
    }
    let grand_total = fill_totals(&mut root);
    if grand_total <= 0.0 {
        return note("no spans to fold (run discover with --trace-out)");
    }
    let depth = (depth_of(&root) - 1).min(MAX_FLAME_DEPTH);

    let (w, row_h, gap) = (660.0, 18.0, 2.0);
    let h = depth as f64 * (row_h + gap);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {w} {h:.0}" role="img" aria-label="flamegraph (icicle)">"#
    );
    // Recursive layout: each node gets a width share of its parent's
    // span, children packed left-to-right; sub-half-pixel rects are
    // skipped (their time is still inside the parent's rect).
    fn draw(
        svg: &mut String,
        node: &Node,
        path: &str,
        x: f64,
        width: f64,
        level: usize,
        grand_total: f64,
    ) {
        if level >= MAX_FLAME_DEPTH {
            return;
        }
        let mut cx = x;
        for (name, child) in &node.children {
            let cw = width * child.total_us / node.total_us.max(1e-9);
            if cw >= 0.5 {
                let y = level as f64 * 20.0;
                // Lighter half of the ramp only, so the dark in-rect
                // labels stay readable at every depth.
                let color = RAMP[level.min(5)];
                let full = if path.is_empty() {
                    name.clone()
                } else {
                    format!("{path};{name}")
                };
                let _ = write!(
                    svg,
                    r#"<rect x="{cx:.2}" y="{y:.1}" width="{:.2}" height="18" rx="1" fill="{color}"><title>{}: {} ({:.1}% of run)</title></rect>"#,
                    cw - 1.0,
                    esc(&full),
                    fmt_dur(child.total_us),
                    100.0 * child.total_us / grand_total
                );
                // Label inside the rect when it fits (~7px per character).
                let label: String = name.chars().take((cw / 7.0) as usize).collect();
                if label.len() >= 3 {
                    let _ = write!(
                        svg,
                        r#"<text x="{:.1}" y="{:.1}" class="flame-label">{}</text>"#,
                        cx + 4.0,
                        y + 13.0,
                        esc(&label)
                    );
                }
                draw(svg, child, &full, cx, cw, level + 1, grand_total);
            }
            cx += cw;
        }
    }
    draw(&mut svg, &root, "", 0.0, w, 0, grand_total);
    svg.push_str("</svg>");
    svg
}

/// Scaling-attribution table for a trace pair: spans ranked by wall
/// time lost versus perfect scaling.
fn scaling_panel(base: &Trace, scaled: &Trace) -> String {
    for (label, t) in [("baseline trace", base), ("compare trace", scaled)] {
        if let Some(diag) = t.empty_diagnostic() {
            return note(&format!("{label}: {diag}"));
        }
    }
    let p_base = base.inferred_threads();
    let p_scaled = scaled.inferred_threads();
    let p = (p_scaled as f64 / p_base as f64).max(1.0);
    let report = scaling_attribution(base, scaled, p);
    let mut out = String::new();
    for (label, t, threads) in [("baseline", base, p_base), ("compare", scaled, p_scaled)] {
        if let Some(cores) = t.host_cores {
            if threads > cores {
                out.push_str(&note(&format!(
                    "warning: the {label} trace ran {threads} worker thread(s) on a \
                     {cores}-core host — it was oversubscribed and its scaling numbers \
                     must not be trusted"
                )));
            }
        }
    }
    let _ = write!(
        out,
        r#"<p class="caption">wall {} → {} (speedup {:.2}×, p = {:.0}{}); spans ranked by wall time lost to imperfect scaling</p>"#,
        fmt_dur(report.base_wall_us),
        fmt_dur(report.scaled_wall_us),
        report.wall_speedup,
        report.p,
        report
            .amdahl_serial_fraction
            .map(|s| format!("; Amdahl serial fraction ≈ {:.0}%", 100.0 * s))
            .unwrap_or_default()
    );
    out.push_str(
        r#"<table><thead><tr><th>span</th><th class="num">base</th><th class="num">scaled</th><th class="num">speedup</th><th class="num">lost</th></tr></thead><tbody>"#,
    );
    for row in report.rows.iter().take(MAX_TABLE_ROWS) {
        let _ = write!(
            out,
            r#"<tr><td>{}</td><td class="num">{}</td><td class="num">{}</td><td class="num">{:.2}×</td><td class="num">{}</td></tr>"#,
            esc(&row.name),
            fmt_dur(row.base_us),
            fmt_dur(row.scaled_us),
            row.speedup,
            fmt_dur(row.lost_us)
        );
    }
    out.push_str("</tbody></table>");
    out
}

/// Percentile strips: for each span path a p50→p95→p99 bar on a shared
/// log-ish scale, widest spans first.
fn percentile_strips(rows: &[SpanPercentiles]) -> String {
    let mut rows: Vec<&SpanPercentiles> = rows.iter().filter(|r| r.p99_us > 0.0).collect();
    if rows.is_empty() {
        return note(
            "no span percentiles in metrics (needs a metrics file from schema 2.1 or newer)",
        );
    }
    rows.sort_by(|a, b| b.p99_us.total_cmp(&a.p99_us));
    rows.truncate(MAX_TABLE_ROWS);
    let max_p99 = rows[0].p99_us;
    // log10 scale from 1µs so strips stay readable across 6 decades.
    let pos = |us: f64| (us.max(1.0).log10() / max_p99.max(10.0).log10()).clamp(0.0, 1.0);
    let (w, gutter, right) = (660.0, 190.0, 8.0);
    let (row_h, gap, top) = (18.0, 6.0, 4.0);
    let lane_w = w - gutter - right;
    let h = top + rows.len() as f64 * (row_h + gap);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {w} {h:.0}" role="img" aria-label="span duration percentiles">"#
    );
    for (i, r) in rows.iter().enumerate() {
        let y = top + i as f64 * (row_h + gap);
        let label: String = r.span.chars().take(24).collect();
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" class="tick" text-anchor="end">{}<title>{} ({} samples)</title></text>"#,
            gutter - 8.0,
            y + row_h - 5.0,
            esc(&label),
            esc(&r.span),
            r.count
        );
        let _ = write!(
            svg,
            r#"<rect x="{gutter}" y="{y:.1}" width="{lane_w:.1}" height="{row_h}" class="lane"/>"#
        );
        // p50→p99 band, with a tick at p95.
        let (x50, x95, x99) = (
            gutter + lane_w * pos(r.p50_us),
            gutter + lane_w * pos(r.p95_us),
            gutter + lane_w * pos(r.p99_us),
        );
        let _ = write!(
            svg,
            r#"<rect x="{x50:.1}" y="{:.1}" width="{:.1}" height="{:.1}" class="span"><title>{}: p50 {} · p95 {} · p99 {}</title></rect><line x1="{x95:.1}" y1="{y:.1}" x2="{x95:.1}" y2="{:.1}" class="baseline"/>"#,
            y + 3.0,
            (x99 - x50).max(2.0),
            row_h - 6.0,
            esc(&r.span),
            fmt_dur(r.p50_us),
            fmt_dur(r.p95_us),
            fmt_dur(r.p99_us),
            y + row_h,
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" class="tick">{}</text>"#,
            (x99 + 6.0).min(w - 60.0),
            y + row_h - 5.0,
            fmt_dur(r.p99_us)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Assembles the full document.
fn render_html(
    metrics: Option<&Metrics>,
    diag: Option<&Diag>,
    trace: Option<&Trace>,
    compare: Option<&Trace>,
) -> String {
    let mut html = String::from(HEAD);

    // Header line from the discovery summary, when present.
    html.push_str("<h1>causalformer report</h1>");
    if let Some(d) = metrics.and_then(|m| m.discovery.as_ref()) {
        let _ = write!(
            html,
            r#"<p class="summary">{} · preset {} · {} series · {} edges · {:.2} s wall</p>"#,
            esc(&d.input),
            esc(&d.preset),
            d.n_series,
            d.edges,
            d.wall_secs
        );
    }
    if let Some(m) = metrics {
        let _ = write!(
            html,
            r#"<p class="note">metrics schema v{}</p>"#,
            esc(&m.schema_version)
        );
    }

    // Panel 1: training loss. Metrics preferred; cfdiag carries the same
    // losses and serves as the fallback.
    let losses: Option<(Vec<f64>, Vec<f64>)> = match (metrics, diag) {
        (Some(m), _) if !m.epochs.is_empty() => Some((
            m.epochs.iter().map(|e| e.train_loss).collect(),
            m.epochs.iter().map(|e| e.val_loss).collect(),
        )),
        (_, Some(d)) if !d.epochs.is_empty() => Some((
            d.epochs.iter().map(|e| e.train_loss).collect(),
            d.epochs.iter().map(|e| e.val_loss).collect(),
        )),
        _ => None,
    };
    html.push_str(r#"<section id="panel-training-loss"><h2>Training loss</h2>"#);
    match losses {
        Some((train, val)) => html.push_str(&line_chart(
            &[
                Series {
                    name: "train loss",
                    color: "--series-1",
                    ys: train,
                },
                Series {
                    name: "validation loss",
                    color: "--series-2",
                    ys: val,
                },
            ],
            "loss per epoch",
        )),
        None => html.push_str(&note(
            "no epoch records (run discover with --metrics-out or --diag-out)",
        )),
    }
    html.push_str("</section>");

    // Panel 2: causal-matrix evolution (diagnostics).
    html.push_str(r#"<section id="panel-causal-evolution"><h2>Causal matrix evolution</h2><p class="caption">Mean absolute causal mask per epoch (row causes column); right-most tile is the final aggregated score matrix.</p>"#);
    match diag {
        Some(d) => html.push_str(&causal_evolution(d)),
        None => html.push_str(&note("no diagnostics file (run discover with --diag-out)")),
    }
    html.push_str("</section>");

    // Panel 3: thread utilization (trace).
    html.push_str(r#"<section id="panel-thread-utilization"><h2>Thread utilization</h2><p class="caption">Per-thread span timeline; the percentage is the merged busy fraction of the traced interval.</p>"#);
    match trace {
        Some(t) => html.push_str(&thread_timeline(t)),
        None => html.push_str(&note("no trace file (run discover with --trace-out)")),
    }
    html.push_str("</section>");

    // Panel 5: top self-time spans (trace).
    html.push_str(r#"<section id="panel-top-self-time"><h2>Top self-time spans</h2><p class="caption">Per span name: total wall time and self time (total minus time in nested spans), aggregated across all threads.</p>"#);
    match trace {
        Some(t) => html.push_str(&self_time_table(t)),
        None => html.push_str(&note("no trace file (run discover with --trace-out)")),
    }
    html.push_str("</section>");

    // Panel 5b: flamegraph (trace).
    html.push_str(r#"<section id="panel-flame"><h2>Flamegraph</h2><p class="caption">Icicle layout (roots on top, callees below); rect width is total wall time on that call path. The same collapsed stacks are exported by <code>analyze --flamegraph</code>.</p>"#);
    match trace {
        Some(t) => html.push_str(&flame_panel(t)),
        None => html.push_str(&note("no trace file (run discover with --trace-out)")),
    }
    html.push_str("</section>");

    // Panel 6: scaling attribution (trace pair).
    html.push_str(r#"<section id="panel-scaling"><h2>Scaling attribution</h2>"#);
    match (trace, compare) {
        (Some(base), Some(scaled)) => html.push_str(&scaling_panel(base, scaled)),
        _ => html.push_str(&note(
            "no comparison trace (pass --compare-trace with a trace of the same \
             workload at a higher thread count)",
        )),
    }
    html.push_str("</section>");

    // Panel 7: span-duration percentiles (metrics span_summary).
    html.push_str(r#"<section id="panel-percentiles"><h2>Span duration percentiles</h2><p class="caption">p50–p99 band per span path (log scale, tick at p95), from the fixed-bucket streaming histograms.</p>"#);
    match metrics {
        Some(m) => html.push_str(&percentile_strips(&m.span_percentiles)),
        None => html.push_str(&note("no metrics file (run discover with --metrics-out)")),
    }
    html.push_str("</section>");

    // Panel 4: buffer-pool counters (metrics epochs).
    html.push_str(r#"<section id="panel-pool"><h2>Buffer pool</h2><p class="caption">Cumulative pool hits and misses per epoch; a flat miss curve after warm-up means steady-state training allocates nothing.</p>"#);
    let pool: Option<(Vec<f64>, Vec<f64>)> = metrics.and_then(|m| {
        let rows: Vec<(u64, u64)> = m
            .epochs
            .iter()
            .filter_map(|e| Some((e.pool_hit?, e.pool_miss?)))
            .collect();
        if rows.is_empty() {
            None
        } else {
            Some((
                rows.iter().map(|r| r.0 as f64).collect(),
                rows.iter().map(|r| r.1 as f64).collect(),
            ))
        }
    });
    match pool {
        Some((hit, miss)) => html.push_str(&line_chart(
            &[
                Series {
                    name: "pool hits",
                    color: "--series-1",
                    ys: hit,
                },
                Series {
                    name: "pool misses",
                    color: "--series-2",
                    ys: miss,
                },
            ],
            "cumulative count",
        )),
        None => html.push_str(&note(
            "no pool counters in metrics (needs a metrics file from this version)",
        )),
    }
    html.push_str("</section>");

    // Panel 8: work-stealing scheduler counters (metrics summary).
    html.push_str(r#"<section id="panel-scheduler"><h2>Scheduler</h2><p class="caption">Work-stealing pool telemetry for the whole run: parallel vs inline dispatches, chunk tasks, scope spawns, steals, injector overflow, and summed busy/idle time.</p>"#);
    match metrics.map(|m| m.scheduler.as_slice()) {
        Some(rows) if !rows.is_empty() => html.push_str(&scheduler_table(rows)),
        _ => html.push_str(&note(
            "no scheduler counters in metrics (needs a --metrics-out file \
             from a build with the cf-par task scheduler)",
        )),
    }
    html.push_str("</section>");

    html.push_str("</main></body></html>\n");
    html
}

/// The `par.*` counter table. Nanosecond counters render as durations,
/// everything else as plain integers.
fn scheduler_table(rows: &[(String, f64)]) -> String {
    let mut out = String::from(
        r#"<table><thead><tr><th>counter</th><th class="num">value</th></tr></thead><tbody>"#,
    );
    for (name, value) in rows {
        let rendered = if name.ends_with("_ns") {
            fmt_dur(value / 1_000.0)
        } else {
            format!("{value:.0}")
        };
        let _ = write!(
            out,
            r#"<tr><td>{}</td><td class="num">{rendered}</td></tr>"#,
            esc(name)
        );
    }
    out.push_str("</tbody></table>");
    out
}

/// Document head: all styling inline, light and dark from the same
/// palette, no external assets.
const HEAD: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>causalformer report</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid-line: #e1e0d9;
  --baseline-ink: #c3c2b7;
  --lane: #f0efec;
  --series-1: #2a78d6;
  --series-2: #eb6834;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid-line: #2c2c2a;
    --baseline-ink: #383835;
    --lane: #242422;
    --series-1: #3987e5;
    --series-2: #d95926;
  }
}
body {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
  line-height: 1.45;
}
main { max-width: 740px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 8px; }
.summary { color: var(--text-secondary); margin: 0 0 2px; }
.caption { color: var(--text-secondary); font-size: 12.5px; margin: 0 0 10px; }
.note { color: var(--text-muted); font-size: 12.5px; margin: 6px 0 0; }
section {
  background: var(--surface-1);
  border: 1px solid var(--grid-line);
  border-radius: 8px;
  padding: 16px;
  margin-top: 16px;
}
svg { display: block; width: 100%; height: auto; }
.grid { stroke: var(--grid-line); stroke-width: 1; }
.baseline { stroke: var(--baseline-ink); stroke-width: 1; }
.lane { fill: var(--lane); }
.span { fill: var(--series-1); fill-opacity: 0.65; }
.tick {
  fill: var(--text-muted);
  font-size: 11px;
  font-family: inherit;
  font-variant-numeric: tabular-nums;
}
.flame-label { fill: #17314f; font-size: 11px; font-family: inherit; pointer-events: none; }
table { border-collapse: collapse; width: 100%; font-size: 12.5px; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid-line); }
th { color: var(--text-muted); font-weight: 500; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 16px; margin-bottom: 8px; color: var(--text-secondary); font-size: 12.5px; }
.key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; align-items: flex-end; }
.tile svg { width: auto; }
.tile-label { color: var(--text-muted); font-size: 11px; text-align: center; margin-top: 4px; }
.ramp { display: flex; align-items: center; gap: 6px; margin-top: 10px; color: var(--text-muted); font-size: 11px; }
.ramp svg { width: 130px; }
</style>
</head>
<body>
<main>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_num_is_compact() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.5), "1.5");
        assert_eq!(fmt_num(0.25), "0.25");
        assert_eq!(fmt_num(123.4), "123");
        assert_eq!(fmt_num(f64::NAN), "—");
        assert!(fmt_num(1.0e-7).contains('e'));
    }

    #[test]
    fn busy_merges_nested_and_overlapping_spans() {
        let spans = vec![
            TraceSpan {
                name: "a".into(),
                ts_us: 0.0,
                dur_us: 10.0,
            },
            TraceSpan {
                name: "b".into(),
                ts_us: 2.0,
                dur_us: 3.0,
            }, // nested in a
            TraceSpan {
                name: "c".into(),
                ts_us: 8.0,
                dur_us: 6.0,
            }, // overlaps a
            TraceSpan {
                name: "d".into(),
                ts_us: 20.0,
                dur_us: 5.0,
            }, // disjoint
        ];
        assert!((busy_us(&spans) - 19.0).abs() < 1e-9);
    }

    #[test]
    fn render_without_inputs_keeps_all_panel_ids() {
        let html = render_html(None, None, None, None);
        for id in [
            "panel-training-loss",
            "panel-causal-evolution",
            "panel-thread-utilization",
            "panel-pool",
            "panel-top-self-time",
            "panel-flame",
            "panel-scaling",
            "panel-percentiles",
            "panel-scheduler",
        ] {
            assert!(html.contains(&format!(r#"id="{id}""#)), "{id} missing");
        }
        assert!(!html.contains("http://"), "report must be self-contained");
        assert!(!html.contains("<script"), "report must not need scripts");
    }

    #[test]
    fn scheduler_panel_parses_metrics_summary_and_renders() {
        let dir = std::env::temp_dir();
        let path = dir.join("cf_report_sched.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"event\":\"meta\",\"schema_version\":\"2.1\"}\n",
                "{\"event\":\"metrics_summary\",\"ts\":1.0,\"metrics\":{",
                "\"counters\":{\"par.jobs\":12,\"par.steals\":3,",
                "\"par.busy_ns\":2500000000,\"mem.pool.hit\":99},",
                "\"gauges\":{\"par.threads\":4.0},\"histograms\":{}}}\n"
            ),
        )
        .unwrap();
        let m = load_metrics(path.to_str().unwrap()).unwrap();
        // Only par.* series make the panel; pool counters have their own.
        assert_eq!(m.scheduler.len(), 4, "{:?}", m.scheduler);
        assert!(m.scheduler.iter().all(|(n, _)| n.starts_with("par.")));
        let html = render_html(Some(&m), None, None, None);
        assert!(html.contains("par.steals"), "{html}");
        // Nanosecond counters render as durations: 2.5e9 ns = 2.50 s.
        assert!(html.contains("2.50"), "{html}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn percentile_strips_render_and_degrade() {
        assert!(percentile_strips(&[]).contains("no span percentiles"));
        let rows = vec![SpanPercentiles {
            span: "discover.train.epoch".into(),
            count: 10,
            p50_us: 900.0,
            p95_us: 1800.0,
            p99_us: 2500.0,
        }];
        let svg = percentile_strips(&rows);
        assert!(svg.contains("discover.train.epoch"), "{svg}");
        assert!(svg.contains("p50 900 µs"), "{svg}");
    }

    #[test]
    fn self_time_table_degrades_on_empty_trace() {
        let out = self_time_table(&Trace::default());
        assert!(out.contains("no events"), "{out}");
    }

    #[test]
    fn flame_panel_folds_nested_spans_into_an_icicle() {
        // main: discover[0,100ms] > train[5,80ms]; a second thread with
        // one short job. Widths scale with total time per path.
        let trace = Trace {
            threads: vec![
                TraceThread {
                    tid: 1,
                    name: "main".into(),
                    spans: vec![
                        TraceSpan {
                            name: "discover".into(),
                            ts_us: 0.0,
                            dur_us: 100_000.0,
                        },
                        TraceSpan {
                            name: "train".into(),
                            ts_us: 5_000.0,
                            dur_us: 75_000.0,
                        },
                    ],
                },
                TraceThread {
                    tid: 2,
                    name: "cf-par-0".into(),
                    spans: vec![TraceSpan {
                        name: "par.job".into(),
                        ts_us: 6_000.0,
                        dur_us: 18_000.0,
                    }],
                },
            ],
            ..Trace::default()
        };
        let svg = flame_panel(&trace);
        // Root row: one rect per thread; nesting carries the full path
        // in the tooltip.
        assert!(svg.contains("<title>main: 100.0 ms"), "{svg}");
        assert!(svg.contains("<title>main;discover: 100.0 ms"), "{svg}");
        assert!(svg.contains("<title>main;discover;train: 75.0 ms"), "{svg}");
        assert!(svg.contains("<title>cf-par-0;par.job: 18.0 ms"), "{svg}");
        // Empty trace degrades to a note, not a blank panel.
        assert!(flame_panel(&Trace::default()).contains("no events"));
    }

    #[test]
    fn accepts_newer_minor_versions_within_the_supported_major() {
        // Minor bumps are additive by contract: a 2.9 file (unknown
        // minor, known major) must parse, not be refused. Pinned so
        // future schema bumps stay additive within major 2.
        let dir = std::env::temp_dir();
        let path = dir.join("cf_report_minor_schema.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"event\":\"meta\",\"schema_version\":\"2.9\"}\n",
                "{\"event\":\"epoch\",\"epoch\":1,\"train_loss\":0.5,\"val_loss\":0.6,",
                "\"some_future_field\":42}\n"
            ),
        )
        .unwrap();
        let m = load_metrics(path.to_str().unwrap()).unwrap();
        assert_eq!(m.schema_version, "2.9");
        assert_eq!(m.epochs.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refuses_newer_metrics_major() {
        let dir = std::env::temp_dir();
        let path = dir.join("cf_report_future_schema.jsonl");
        std::fs::write(
            &path,
            "{\"event\":\"meta\",\"schema_version\":\"3.0\"}\n{\"event\":\"epoch\",\"epoch\":1}\n",
        )
        .unwrap();
        let err = match load_metrics(path.to_str().unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("future schema accepted"),
        };
        assert!(format!("{err:?}").contains("schema_version 3.0"), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_metrics_without_meta_parse_as_v1() {
        let dir = std::env::temp_dir();
        let path = dir.join("cf_report_legacy.jsonl");
        std::fs::write(
            &path,
            "{\"event\":\"epoch\",\"epoch\":1,\"train_loss\":0.5,\"val_loss\":0.6}\n",
        )
        .unwrap();
        let m = load_metrics(path.to_str().unwrap()).unwrap();
        assert_eq!(m.schema_version, "1.0");
        assert_eq!(m.epochs.len(), 1);
        assert!(m.epochs[0].pool_hit.is_none());
        std::fs::remove_file(&path).ok();
    }
}
