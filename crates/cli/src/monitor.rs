//! `monitor` — terminal viewer for a live heartbeat JSONL stream.
//!
//! `discover --heartbeat-out hb.jsonl` (or `cf-bench --heartbeat-out`)
//! appends one line-atomic JSON record per sampler tick; this command
//! tails that file and redraws a compact status view: an RSS sparkline,
//! the buffer-pool hit rate, per-thread busy fractions (from `busy_ns`
//! deltas between consecutive samples), per-unit progress bars with the
//! sampler's ETA, and a stall banner with the watchdog's open-span dump.
//!
//! The reader is deliberately forgiving: a torn final line (the producer
//! mid-write) or an unknown event kind is skipped, so the monitor can run
//! against a file that is still being written. Follow mode exits when the
//! producer's `run_end` record appears.

use crate::CliError;
use serde_json::Value;
use std::collections::BTreeMap;

/// Parsed `monitor` arguments.
#[derive(Debug, Clone)]
pub struct MonitorArgs {
    /// Heartbeat JSONL path (written by `--heartbeat-out`).
    pub path: String,
    /// Render the current state once and exit instead of tailing.
    pub once: bool,
    /// Redraw period in follow mode, milliseconds.
    pub interval_ms: u64,
}

impl Default for MonitorArgs {
    fn default() -> Self {
        Self {
            path: String::new(),
            once: false,
            interval_ms: 500,
        }
    }
}

/// One worker thread's counters within a heartbeat sample.
#[derive(Debug, Clone)]
struct ThreadSample {
    name: String,
    busy_ns: u64,
}

/// One `heartbeat` record, reduced to what the view renders.
#[derive(Debug, Clone, Default)]
struct Sample {
    ts: f64,
    seq: u64,
    rss_bytes: u64,
    hwm_bytes: u64,
    pool_hit: u64,
    pool_miss: u64,
    stalled: bool,
    stall_secs: f64,
    threads: Vec<ThreadSample>,
    /// unit → (done, total, eta_secs) from the sample's progress array.
    progress: Vec<(String, u64, u64, Option<f64>)>,
    /// thread name → open-span stack (present only while stalled).
    open_spans: Vec<(String, Vec<String>)>,
}

/// Everything parsed out of the heartbeat file so far.
#[derive(Debug, Default)]
pub struct State {
    schema_version: String,
    period_ms: u64,
    watchdog: String,
    /// RSS of every sample seen, for the sparkline.
    rss_history: Vec<u64>,
    prev: Option<Sample>,
    last: Option<Sample>,
    /// Deterministic `progress` events (unit → done/total), kept as a
    /// fallback for ticks between samples.
    units: BTreeMap<String, (u64, u64)>,
    /// `Some(samples)` once the producer wrote its `run_end` record.
    ended: Option<u64>,
    fatal: bool,
}

impl State {
    /// True once the producer finished (cleanly or via the watchdog).
    pub fn ended(&self) -> bool {
        self.ended.is_some() || self.fatal
    }
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn get_str(v: &Value, key: &str) -> String {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Parses the heartbeat JSONL text accumulated so far. Unparsable or
/// unknown lines are skipped (the last line may be torn mid-write).
pub fn parse_heartbeat(text: &str) -> State {
    let mut st = State::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        match v.get("event").and_then(Value::as_str) {
            Some("meta") => {
                st.schema_version = get_str(&v, "schema_version");
                st.period_ms = get_u64(&v, "period_ms");
                st.watchdog = get_str(&v, "watchdog");
            }
            Some("progress") => {
                let unit = get_str(&v, "unit");
                st.units
                    .insert(unit, (get_u64(&v, "done"), get_u64(&v, "total")));
            }
            Some("heartbeat") => {
                let mut s = Sample {
                    ts: get_f64(&v, "ts"),
                    seq: get_u64(&v, "seq"),
                    rss_bytes: get_u64(&v, "rss_bytes"),
                    hwm_bytes: get_u64(&v, "hwm_bytes"),
                    pool_hit: get_u64(&v, "pool_hit"),
                    pool_miss: get_u64(&v, "pool_miss"),
                    stalled: v.get("stalled").and_then(Value::as_bool).unwrap_or(false),
                    stall_secs: get_f64(&v, "stall_secs"),
                    ..Sample::default()
                };
                if let Some(ts) = v.get("threads").and_then(Value::as_array) {
                    for t in ts {
                        s.threads.push(ThreadSample {
                            name: get_str(t, "name"),
                            busy_ns: get_u64(t, "busy_ns"),
                        });
                    }
                }
                if let Some(ps) = v.get("progress").and_then(Value::as_array) {
                    for p in ps {
                        s.progress.push((
                            get_str(p, "unit"),
                            get_u64(p, "done"),
                            get_u64(p, "total"),
                            p.get("eta_secs").and_then(Value::as_f64),
                        ));
                    }
                }
                if let Some(os) = v.get("open_spans").and_then(Value::as_array) {
                    for o in os {
                        let spans = o
                            .get("spans")
                            .and_then(Value::as_array)
                            .map(|a| {
                                a.iter()
                                    .filter_map(Value::as_str)
                                    .map(str::to_string)
                                    .collect()
                            })
                            .unwrap_or_default();
                        s.open_spans.push((get_str(o, "thread"), spans));
                    }
                }
                st.rss_history.push(s.rss_bytes);
                st.prev = st.last.take();
                st.last = Some(s);
            }
            Some("run_end") => st.ended = Some(get_u64(&v, "samples")),
            Some("watchdog_fatal") => st.fatal = true,
            _ => {}
        }
    }
    st
}

/// Scales bytes to a human unit.
fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.0} KiB", b / 1024.0)
    }
}

/// Eight-level block sparkline of the last `width` values, min–max scaled.
fn sparkline(values: &[u64], width: usize) -> String {
    const BLOCKS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let tail = &values[values.len().saturating_sub(width)..];
    if tail.is_empty() {
        return String::new();
    }
    let lo = *tail.iter().min().expect("non-empty");
    let hi = *tail.iter().max().expect("non-empty");
    tail.iter()
        .map(|&v| {
            let level = if hi == lo {
                0
            } else {
                (((v - lo) as f64 / (hi - lo) as f64) * 7.0).round() as usize
            };
            BLOCKS[level.min(7)]
        })
        .collect()
}

/// `[=====>....]`-style bar; full width when done == total.
fn bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        ((done as f64 / total as f64) * width as f64).round() as usize
    }
    .min(width);
    let mut s = String::from("[");
    for i in 0..width {
        s.push(if i < filled { '=' } else { '.' });
    }
    s.push(']');
    s
}

fn fmt_eta(secs: f64) -> String {
    if secs >= 90.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

/// Renders the parsed state as the monitor's text frame. Pure, so the
/// view is unit-testable without a terminal or a live producer.
pub fn render(st: &State, path: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "heartbeat {path} — schema {}, period {} ms, watchdog {}\n",
        if st.schema_version.is_empty() {
            "?"
        } else {
            &st.schema_version
        },
        st.period_ms,
        if st.watchdog.is_empty() {
            "?"
        } else {
            &st.watchdog
        },
    ));
    let Some(last) = &st.last else {
        out.push_str("(no samples yet)\n");
        return out;
    };
    out.push_str(&format!(
        "sample #{}  rss {} (peak {})  {}\n",
        last.seq,
        fmt_bytes(last.rss_bytes),
        fmt_bytes(last.hwm_bytes),
        sparkline(&st.rss_history, 48),
    ));
    let lookups = last.pool_hit + last.pool_miss;
    if lookups > 0 {
        out.push_str(&format!(
            "pool  {:.1}% hit ({} hits / {} misses)\n",
            100.0 * last.pool_hit as f64 / lookups as f64,
            last.pool_hit,
            last.pool_miss,
        ));
    }
    // Per-thread busy fraction over the last sampling interval: the delta
    // of each thread's cumulative busy_ns divided by the wall delta.
    if let Some(prev) = &st.prev {
        let wall_ns = ((last.ts - prev.ts) * 1e9).max(1.0);
        let prev_busy: BTreeMap<&str, u64> = prev
            .threads
            .iter()
            .map(|t| (t.name.as_str(), t.busy_ns))
            .collect();
        for t in &last.threads {
            let before = prev_busy.get(t.name.as_str()).copied().unwrap_or(0);
            let frac = ((t.busy_ns.saturating_sub(before)) as f64 / wall_ns).clamp(0.0, 1.0);
            out.push_str(&format!(
                "thread {:<18} {} {:>4.0}% busy\n",
                t.name,
                bar((frac * 100.0).round() as u64, 100, 20),
                frac * 100.0,
            ));
        }
    }
    // Progress bars: the sample's own array carries the sampler ETA; the
    // deterministic progress events fill in units between samples.
    let mut shown = std::collections::BTreeSet::new();
    for (unit, done, total, eta) in &last.progress {
        shown.insert(unit.clone());
        let eta_txt = match eta {
            Some(e) if *done < *total => format!("  eta {}", fmt_eta(*e)),
            _ => String::new(),
        };
        out.push_str(&format!(
            "{:<22} {} {done}/{total}{eta_txt}\n",
            unit,
            bar(*done, *total, 24),
        ));
    }
    for (unit, (done, total)) in &st.units {
        if !shown.contains(unit) {
            out.push_str(&format!(
                "{:<22} {} {done}/{total}\n",
                unit,
                bar(*done, *total, 24),
            ));
        }
    }
    if last.stalled {
        out.push_str(&format!(
            "*** STALLED: no progress for {:.1}s ***\n",
            last.stall_secs
        ));
        for (thread, spans) in &last.open_spans {
            out.push_str(&format!("  {thread}: {}\n", spans.join(" > ")));
        }
    }
    if st.fatal {
        out.push_str("run killed by the stall watchdog (CF_WATCHDOG=fatal)\n");
    } else if let Some(samples) = st.ended {
        out.push_str(&format!("run ended cleanly ({samples} samples)\n"));
    }
    out
}

/// Executes `monitor`: renders once under `--once`, otherwise tails the
/// file, redrawing every `interval_ms` until the producer's `run_end`
/// (or `watchdog_fatal`) record appears. Returns the final frame.
pub fn run_monitor(a: &MonitorArgs) -> Result<String, CliError> {
    if a.once {
        let text = std::fs::read_to_string(&a.path)
            .map_err(|e| CliError::Run(format!("reading {}: {e}", a.path)))?;
        return Ok(render(&parse_heartbeat(&text), &a.path));
    }
    loop {
        let Ok(text) = std::fs::read_to_string(&a.path) else {
            // Producer may not have created the file yet; keep waiting.
            println!("waiting for {} …", a.path);
            std::thread::sleep(std::time::Duration::from_millis(a.interval_ms));
            continue;
        };
        let st = parse_heartbeat(&text);
        let frame = render(&st, &a.path);
        if st.ended() {
            return Ok(frame);
        }
        // ANSI clear + home, then the frame — a cheap full-screen redraw.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(a.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> String {
        [
            r#"{"event":"meta","schema_version":"2.2","kind":"heartbeat","period_ms":250,"stall_window_secs":5.0,"watchdog":"warn","ts":100.0}"#,
            r#"{"event":"progress","unit":"train.epoch","done":1,"total":4}"#,
            r#"{"event":"heartbeat","ts":100.25,"seq":0,"rss_bytes":10485760,"hwm_bytes":20971520,"pool_hit":30,"pool_miss":10,"par_threads":2,"progress_epoch":5,"stalled":false,"stall_secs":0.1,"threads":[{"name":"cf-par-0","epoch":3,"busy_ns":100000000}],"progress":[{"unit":"train.epoch","done":1,"total":4,"eta_secs":0.75}]}"#,
            r#"{"event":"progress","unit":"train.epoch","done":2,"total":4}"#,
            r#"{"event":"progress","unit":"detect.window","done":3,"total":9}"#,
            r#"{"event":"heartbeat","ts":100.50,"seq":1,"rss_bytes":31457280,"hwm_bytes":31457280,"pool_hit":70,"pool_miss":10,"par_threads":2,"progress_epoch":9,"stalled":false,"stall_secs":0.1,"threads":[{"name":"cf-par-0","epoch":6,"busy_ns":225000000}],"progress":[{"unit":"train.epoch","done":2,"total":4,"eta_secs":0.5}]}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_and_renders_a_live_stream() {
        let st = parse_heartbeat(&fixture());
        assert_eq!(st.schema_version, "2.2");
        assert_eq!(st.period_ms, 250);
        assert_eq!(st.rss_history, vec![10485760, 31457280]);
        assert!(!st.ended());

        let frame = render(&st, "hb.jsonl");
        // Header, latest sample, pool hit rate from the latest counters.
        assert!(frame.contains("schema 2.2"), "{frame}");
        assert!(frame.contains("sample #1"), "{frame}");
        assert!(frame.contains("rss 30.0 MiB (peak 30.0 MiB)"), "{frame}");
        assert!(frame.contains("87.5% hit"), "{frame}");
        // Busy fraction: (225ms − 100ms) / 250ms wall = 50%.
        assert!(frame.contains("cf-par-0"), "{frame}");
        assert!(frame.contains("50% busy"), "{frame}");
        // The sample's progress row carries the ETA; the fresher progress
        // *event* for detect.window shows without one.
        assert!(frame.contains("train.epoch"), "{frame}");
        assert!(frame.contains("2/4"), "{frame}");
        assert!(frame.contains("eta 0.5s"), "{frame}");
        assert!(frame.contains("detect.window"), "{frame}");
        assert!(frame.contains("3/9"), "{frame}");
        assert!(!frame.contains("STALLED"), "{frame}");
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let text = format!("{}\n{{\"event\":\"heartbe", fixture());
        let st = parse_heartbeat(&text);
        assert_eq!(st.rss_history.len(), 2, "torn line must be ignored");
    }

    #[test]
    fn stall_banner_names_the_open_spans() {
        let text = format!(
            "{}\n{}",
            fixture(),
            r#"{"event":"heartbeat","ts":106.0,"seq":2,"rss_bytes":31457280,"hwm_bytes":31457280,"pool_hit":70,"pool_miss":10,"progress_epoch":9,"stalled":true,"stall_secs":5.5,"threads":[{"name":"cf-par-0","epoch":6,"busy_ns":225000000}],"progress":[],"open_spans":[{"thread":"main","spans":["discover","train.epoch"]}]}"#,
        );
        let frame = render(&parse_heartbeat(&text), "hb.jsonl");
        assert!(frame.contains("STALLED: no progress for 5.5s"), "{frame}");
        assert!(frame.contains("main: discover > train.epoch"), "{frame}");
    }

    #[test]
    fn run_end_and_watchdog_fatal_both_finish_the_stream() {
        let clean = format!(
            "{}\n{}",
            fixture(),
            r#"{"event":"run_end","ts":101.0,"samples":2}"#
        );
        let st = parse_heartbeat(&clean);
        assert!(st.ended());
        assert!(
            render(&st, "hb.jsonl").contains("run ended cleanly (2 samples)"),
            "clean end note missing"
        );

        let killed = format!(
            "{}\n{}",
            fixture(),
            r#"{"event":"watchdog_fatal","ts":101.0,"stall_secs":5.0}"#
        );
        let st = parse_heartbeat(&killed);
        assert!(st.ended());
        assert!(
            render(&st, "hb.jsonl").contains("killed by the stall watchdog"),
            "fatal note missing"
        );
    }

    #[test]
    fn once_mode_renders_a_file_end_to_end() {
        let path =
            std::env::temp_dir().join(format!("cf_monitor_once_{}.jsonl", std::process::id()));
        std::fs::write(&path, fixture()).unwrap();
        let frame = run_monitor(&MonitorArgs {
            path: path.to_string_lossy().into_owned(),
            once: true,
            interval_ms: 500,
        })
        .unwrap();
        assert!(frame.contains("sample #1"), "{frame}");
        std::fs::remove_file(&path).ok();

        // Missing file is a run error, not a panic.
        assert!(run_monitor(&MonitorArgs {
            path: "/nonexistent/hb.jsonl".into(),
            once: true,
            interval_ms: 500,
        })
        .is_err());
    }

    #[test]
    fn sparkline_and_bar_are_stable() {
        assert_eq!(sparkline(&[0, 7, 3], 48).chars().count(), 3);
        assert_eq!(sparkline(&[5, 5], 48), "\u{2581}\u{2581}");
        assert_eq!(bar(0, 4, 4), "[....]");
        assert_eq!(bar(2, 4, 4), "[==..]");
        assert_eq!(bar(4, 4, 4), "[====]");
        assert_eq!(bar(9, 0, 4), "[....]", "zero total never overflows");
    }
}
