//! `causalformer analyze` — mechanical trace analysis.
//!
//! Loads Chrome trace JSON written by `discover --trace-out` (or any
//! bench binary's `--trace-out`) and runs the [`cf_obs::analyze`]
//! engine over it:
//!
//! * single trace (`--trace`): top self-time table, per-thread
//!   utilization, concurrency-based serial fraction, and the
//!   critical-path decomposition of the driving thread;
//! * trace pair (`--compare BASE SCALED`): everything above per trace is
//!   summarised into a **scaling attribution** table ranking the spans
//!   whose wall time fails to shrink with more threads, plus the Amdahl
//!   serial-fraction estimate the wall-time pair implies.
//!
//! Traces recorded on an oversubscribed host (more worker threads than
//! cores, e.g. `host_cores: 1` with 4-thread runs) get a loud warning:
//! scaling conclusions from such runs must not be trusted.
//!
//! `--max-serial-fraction BOUND` turns the compare mode into a CI gate:
//! the run reports one violation (exit 1 in `main`) when the Amdahl
//! serial-fraction estimate exceeds the bound. The gate skips itself
//! with a note on oversubscribed traces, where the estimate would
//! measure scheduler contention rather than the code.

use crate::CliError;
use cf_obs::analyze::{
    aggregate, critical_path, scaling_attribution, serial_fraction, thread_utilization, Span,
    Thread, Trace,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed `analyze` arguments.
#[derive(Debug, Clone)]
pub struct AnalyzeArgs {
    /// Single-trace input path.
    pub trace: Option<String>,
    /// `--compare BASE SCALED` trace pair.
    pub compare: Option<(String, String)>,
    /// Rows per table.
    pub top: usize,
    /// Parallelism of the baseline trace (`--compare`); inferred from
    /// worker-thread timelines when absent.
    pub threads_base: Option<usize>,
    /// Parallelism of the scaled trace; inferred when absent.
    pub threads_scaled: Option<usize>,
    /// `--compare` gate: fail (exit 1) when the Amdahl serial-fraction
    /// estimate exceeds this bound. Skipped with a note when either
    /// trace ran oversubscribed — contention-dominated wall times say
    /// nothing about the code's serial fraction.
    pub max_serial_fraction: Option<f64>,
    /// With `--trace`: also write collapsed stacks (one
    /// `frame;frame value` line per call path, integer µs self-time)
    /// for flamegraph renderers.
    pub flamegraph: Option<String>,
    /// Emit machine-readable JSON instead of tables.
    pub json: bool,
}

impl Default for AnalyzeArgs {
    fn default() -> Self {
        Self {
            trace: None,
            compare: None,
            top: 15,
            threads_base: None,
            threads_scaled: None,
            max_serial_fraction: None,
            flamegraph: None,
            json: false,
        }
    }
}

/// Loads a Chrome trace_event JSON file into the analysis model.
/// Instant/counter events are counted (not analyzed) so an event-free
/// file can be diagnosed precisely.
pub fn load_chrome_trace(path: &str) -> Result<Trace, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Run(format!("reading {path}: {e}")))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| CliError::Run(format!("{path}: bad JSON: {e}")))?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            CliError::Run(format!(
                "{path}: no traceEvents array — not a Chrome trace (write one with \
                 discover --trace-out)"
            ))
        })?;
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    let mut spans: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    let mut other_events = 0u64;
    for e in events {
        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let name = e.get("name").and_then(Value::as_str).unwrap_or_default();
        match e.get("ph").and_then(Value::as_str) {
            Some("M") if name == "thread_name" => {
                if let Some(n) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                {
                    names.insert(tid, n.to_string());
                }
            }
            Some("X") => spans.entry(tid).or_default().push(Span {
                name: name.to_string(),
                ts_us: e.get("ts").and_then(Value::as_f64).unwrap_or(0.0),
                dur_us: e.get("dur").and_then(Value::as_f64).unwrap_or(0.0),
            }),
            Some(_) => other_events += 1,
            None => {}
        }
    }
    Ok(Trace {
        threads: spans
            .into_iter()
            .map(|(tid, spans)| Thread {
                tid,
                name: names
                    .get(&tid)
                    .cloned()
                    .unwrap_or_else(|| format!("tid {tid}")),
                spans,
            })
            .collect(),
        dropped: v.get("droppedEvents").and_then(Value::as_u64).unwrap_or(0),
        other_events,
        host_cores: v
            .get("hostCores")
            .and_then(Value::as_u64)
            .map(|n| n as usize),
    })
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{us:.0}µs")
    }
}

/// Loud oversubscription banner, or `None` when the trace is fine. A
/// trace needs both a recorded `hostCores` and more active worker
/// timelines than cores to trip this.
fn oversubscription_warning(label: &str, trace: &Trace, threads: usize) -> Option<String> {
    let cores = trace.host_cores?;
    (threads > cores).then(|| {
        format!(
            "WARNING: {label} ran {threads} worker thread(s) on a {cores}-core host — \
             the host was OVERSUBSCRIBED and its scaling numbers must not be trusted"
        )
    })
}

fn single_trace_tables(path: &str, trace: &Trace, top: usize) -> String {
    let mut out = String::new();
    let threads = trace.inferred_threads();
    let (wall_lo, wall_hi) = trace.wall_us().unwrap_or((0.0, 0.0));
    let _ = writeln!(
        out,
        "trace {path}: {} thread timeline(s), {} span(s), wall {}",
        trace.threads.len(),
        trace.span_count(),
        fmt_us(wall_hi - wall_lo)
    );
    if trace.dropped > 0 {
        let _ = writeln!(
            out,
            "note: {} event(s) were dropped by the bounded recorder; totals undercount",
            trace.dropped
        );
    }
    if let Some(w) = oversubscription_warning(path, trace, threads) {
        let _ = writeln!(out, "{w}");
    }
    if let Some(diag) = trace.empty_diagnostic() {
        let _ = writeln!(out, "{diag}");
        return out;
    }

    let agg = aggregate(trace);
    let _ = writeln!(out, "\n== top self-time spans ==");
    let _ = writeln!(out, "| span | count | total | self | mean | max |");
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    for st in agg.iter().take(top) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            st.name,
            st.count,
            fmt_us(st.total_us),
            fmt_us(st.self_us),
            fmt_us(st.total_us / st.count.max(1) as f64),
            fmt_us(st.max_us)
        );
    }
    if agg.len() > top {
        let _ = writeln!(out, "({} more span name(s) below the cut)", agg.len() - top);
    }

    let _ = writeln!(out, "\n== thread utilization ==");
    let _ = writeln!(out, "| thread | busy | busy% |");
    let _ = writeln!(out, "|---|---:|---:|");
    for t in thread_utilization(trace) {
        let _ = writeln!(
            out,
            "| {} | {} | {:.0}% |",
            t.name,
            fmt_us(t.busy_us),
            100.0 * t.busy_frac
        );
    }

    if let Some(sf) = serial_fraction(trace) {
        let ceiling = |p: f64| 1.0 / (sf.fraction + (1.0 - sf.fraction) / p);
        let _ = writeln!(
            out,
            "\n== serial fraction ==\nwall {}, serial {} ({:.0}% — time with ≤1 thread busy), \
             avg concurrency {:.2}\nAmdahl ceiling from this run: {:.2}× at 4 threads, \
             {:.2}× at 16",
            fmt_us(sf.wall_us),
            fmt_us(sf.serial_us),
            100.0 * sf.fraction,
            sf.avg_concurrency,
            ceiling(4.0),
            ceiling(16.0)
        );
    }

    let cp = critical_path(trace);
    if !cp.is_empty() {
        let cp_total: f64 = cp.iter().map(|s| s.total_us).sum();
        let _ = writeln!(
            out,
            "\n== critical path (innermost-span decomposition of the driving thread) =="
        );
        let _ = writeln!(out, "| span | time | share |");
        let _ = writeln!(out, "|---|---:|---:|");
        for seg in cp.iter().take(top) {
            let _ = writeln!(
                out,
                "| {} | {} | {:.0}% |",
                seg.name,
                fmt_us(seg.total_us),
                100.0 * seg.total_us / cp_total.max(1e-9)
            );
        }
    }
    out
}

fn single_trace_json(path: &str, trace: &Trace, top: usize) -> String {
    let mut agg_arr = cf_obs::json::Arr::new();
    for st in aggregate(trace).iter().take(top) {
        agg_arr = agg_arr.raw(
            &cf_obs::json::Obj::new()
                .str("span", &st.name)
                .u64("count", st.count)
                .f64("total_us", st.total_us)
                .f64("self_us", st.self_us)
                .f64("max_us", st.max_us)
                .finish(),
        );
    }
    let mut util_arr = cf_obs::json::Arr::new();
    for t in thread_utilization(trace) {
        util_arr = util_arr.raw(
            &cf_obs::json::Obj::new()
                .str("thread", &t.name)
                .f64("busy_us", t.busy_us)
                .f64("busy_frac", t.busy_frac)
                .finish(),
        );
    }
    let mut cp_arr = cf_obs::json::Arr::new();
    for seg in critical_path(trace).iter().take(top) {
        cp_arr = cp_arr.raw(
            &cf_obs::json::Obj::new()
                .str("span", &seg.name)
                .f64("total_us", seg.total_us)
                .finish(),
        );
    }
    let mut obj = cf_obs::json::Obj::new()
        .str("trace", path)
        .u64("spans", trace.span_count() as u64)
        .u64("dropped", trace.dropped)
        .raw("top_self_time", &agg_arr.finish())
        .raw("thread_utilization", &util_arr.finish())
        .raw("critical_path", &cp_arr.finish());
    if let Some(sf) = serial_fraction(trace) {
        obj = obj.raw(
            "serial_fraction",
            &cf_obs::json::Obj::new()
                .f64("wall_us", sf.wall_us)
                .f64("serial_us", sf.serial_us)
                .f64("fraction", sf.fraction)
                .f64("avg_concurrency", sf.avg_concurrency)
                .finish(),
        );
    }
    if let Some(cores) = trace.host_cores {
        obj = obj.u64("host_cores", cores as u64);
    }
    obj.finish()
}

/// Renders the `--compare` scaling-attribution report as markdown.
pub fn compare_tables(
    base_path: &str,
    base: &Trace,
    scaled_path: &str,
    scaled: &Trace,
    p: f64,
    top: usize,
) -> String {
    let mut out = String::new();
    let report = scaling_attribution(base, scaled, p);
    let _ = writeln!(
        out,
        "== scaling attribution: {base_path} → {scaled_path} (p = {p:.0}) =="
    );
    let _ = writeln!(
        out,
        "wall {} → {} (speedup {:.2}×){}",
        fmt_us(report.base_wall_us),
        fmt_us(report.scaled_wall_us),
        report.wall_speedup,
        report
            .amdahl_serial_fraction
            .map(|s| format!("; Amdahl serial fraction ≈ {:.0}%", 100.0 * s))
            .unwrap_or_default()
    );
    let _ = writeln!(
        out,
        "spans ranked by wall time lost to imperfect scaling (scaled − base/p):"
    );
    let _ = writeln!(out, "| span | base | scaled | speedup | lost |");
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for row in report.rows.iter().take(top) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2}× | {} |",
            row.name,
            fmt_us(row.base_us),
            fmt_us(row.scaled_us),
            row.speedup,
            fmt_us(row.lost_us)
        );
    }
    out
}

/// Resolved `--max-serial-fraction` verdict for one compare pair.
struct GateOutcome {
    /// The requested bound.
    bound: f64,
    /// Measured Amdahl estimate, when one exists.
    fraction: Option<f64>,
    /// Why the gate was not evaluated (oversubscription, p ≤ 1).
    skipped: Option<String>,
    /// `true` only when evaluated and over the bound.
    violated: bool,
}

/// Evaluates the serial-fraction gate. Oversubscribed traces skip the
/// check — their wall times measure contention, not the code's serial
/// fraction — as does a pair with no thread-count increase.
fn serial_fraction_gate(
    bound: f64,
    sides: [(&Trace, usize); 2],
    fraction: Option<f64>,
) -> GateOutcome {
    let oversub = sides
        .iter()
        .any(|(t, n)| t.host_cores.is_some_and(|c| *n > c));
    if oversub {
        GateOutcome {
            bound,
            fraction,
            skipped: Some("the recording host was oversubscribed".into()),
            violated: false,
        }
    } else if let Some(f) = fraction {
        GateOutcome {
            bound,
            fraction,
            skipped: None,
            violated: f > bound,
        }
    } else {
        GateOutcome {
            bound,
            fraction: None,
            skipped: Some("no thread-count increase between the traces (p ≤ 1)".into()),
            violated: false,
        }
    }
}

fn gate_verdict_line(g: &GateOutcome) -> String {
    if let Some(reason) = &g.skipped {
        format!(
            "note: serial-fraction gate (bound {:.2}) skipped — {reason}",
            g.bound
        )
    } else {
        let f = g.fraction.unwrap_or(0.0);
        if g.violated {
            format!(
                "FAIL: Amdahl serial fraction {:.1}% exceeds --max-serial-fraction {:.1}%",
                100.0 * f,
                100.0 * g.bound
            )
        } else {
            format!(
                "OK: Amdahl serial fraction {:.1}% within --max-serial-fraction {:.1}%",
                100.0 * f,
                100.0 * g.bound
            )
        }
    }
}

fn compare_json(
    base_path: &str,
    base: &Trace,
    scaled_path: &str,
    scaled: &Trace,
    p: f64,
    top: usize,
    gate: Option<&GateOutcome>,
) -> String {
    let report = scaling_attribution(base, scaled, p);
    let mut rows = cf_obs::json::Arr::new();
    for row in report.rows.iter().take(top) {
        rows = rows.raw(
            &cf_obs::json::Obj::new()
                .str("span", &row.name)
                .f64("base_us", row.base_us)
                .f64("scaled_us", row.scaled_us)
                .f64("speedup", row.speedup)
                .f64("lost_us", row.lost_us)
                .u64("count_base", row.count_base)
                .u64("count_scaled", row.count_scaled)
                .finish(),
        );
    }
    let mut obj = cf_obs::json::Obj::new()
        .str("base", base_path)
        .str("scaled", scaled_path)
        .f64("p", report.p)
        .f64("base_wall_us", report.base_wall_us)
        .f64("scaled_wall_us", report.scaled_wall_us)
        .f64("wall_speedup", report.wall_speedup)
        .raw("rows", &rows.finish());
    if let Some(s) = report.amdahl_serial_fraction {
        obj = obj.f64("amdahl_serial_fraction", s);
    }
    if let Some(g) = gate {
        let mut gobj = cf_obs::json::Obj::new()
            .f64("bound", g.bound)
            .bool("violated", g.violated);
        if let Some(f) = g.fraction {
            gobj = gobj.f64("fraction", f);
        }
        if let Some(r) = &g.skipped {
            gobj = gobj.str("skipped", r);
        }
        obj = obj.raw("serial_fraction_gate", &gobj.finish());
    }
    let oversub = [
        (base, base.inferred_threads()),
        (scaled, scaled.inferred_threads()),
    ]
    .iter()
    .any(|(t, n)| t.host_cores.is_some_and(|c| *n > c));
    obj.bool("oversubscribed", oversub).finish()
}

/// Executes `analyze`, returning what `main` prints plus the number of
/// gate violations (`--max-serial-fraction`); nonzero means exit 1.
pub fn run_analyze(a: &AnalyzeArgs) -> Result<(String, usize), CliError> {
    if let Some(bound) = a.max_serial_fraction {
        if !(0.0..=1.0).contains(&bound) {
            return Err(CliError::Usage(format!(
                "--max-serial-fraction must be a fraction in [0, 1], got {bound}"
            )));
        }
    }
    match (&a.trace, &a.compare) {
        (Some(path), None) => {
            if a.max_serial_fraction.is_some() {
                return Err(CliError::Usage(
                    "--max-serial-fraction needs a --compare trace pair".into(),
                ));
            }
            let trace = load_chrome_trace(path)?;
            let mut out = if a.json {
                let mut s = single_trace_json(path, &trace, a.top);
                s.push('\n');
                s
            } else {
                single_trace_tables(path, &trace, a.top)
            };
            if let Some(folded_path) = &a.flamegraph {
                cf_obs::export::write_folded_stacks(std::path::Path::new(folded_path), &trace)
                    .map_err(|e| CliError::Run(format!("writing {folded_path}: {e}")))?;
                if !a.json {
                    let _ = writeln!(out, "collapsed stacks written to {folded_path}");
                }
            }
            Ok((out, 0))
        }
        (None, Some((base_path, scaled_path))) => {
            if a.flamegraph.is_some() {
                return Err(CliError::Usage(
                    "--flamegraph needs a single --trace (not --compare)".into(),
                ));
            }
            let base = load_chrome_trace(base_path)?;
            let scaled = load_chrome_trace(scaled_path)?;
            let mut out = String::new();
            // Partial inputs degrade to a one-line diagnostic per side.
            let diags: Vec<String> = [(base_path, &base), (scaled_path, &scaled)]
                .iter()
                .filter_map(|(p, t)| t.empty_diagnostic().map(|d| format!("{p}: {d}")))
                .collect();
            if !diags.is_empty() {
                for d in &diags {
                    out.push_str(d);
                    out.push('\n');
                }
                out.push_str("nothing to compare\n");
                return Ok((out, 0));
            }
            let p_base = a.threads_base.unwrap_or_else(|| base.inferred_threads());
            let p_scaled = a
                .threads_scaled
                .unwrap_or_else(|| scaled.inferred_threads());
            let p = (p_scaled as f64 / p_base as f64).max(1.0);
            let gate = a.max_serial_fraction.map(|bound| {
                let fraction = scaling_attribution(&base, &scaled, p).amdahl_serial_fraction;
                serial_fraction_gate(bound, [(&base, p_base), (&scaled, p_scaled)], fraction)
            });
            let violations = gate.as_ref().map_or(0, |g| g.violated as usize);
            if a.json {
                out.push_str(&compare_json(
                    base_path,
                    &base,
                    scaled_path,
                    &scaled,
                    p,
                    a.top,
                    gate.as_ref(),
                ));
                out.push('\n');
                return Ok((out, violations));
            }
            for (path, trace, threads) in
                [(base_path, &base, p_base), (scaled_path, &scaled, p_scaled)]
            {
                if let Some(w) = oversubscription_warning(path, trace, threads) {
                    out.push_str(&w);
                    out.push('\n');
                }
            }
            if a.threads_base.is_none() || a.threads_scaled.is_none() {
                let _ = writeln!(
                    out,
                    "parallelism inferred from cf-par worker timelines: {p_base} → {p_scaled} \
                     (override with --threads-base / --threads-scaled)"
                );
            }
            out.push_str(&compare_tables(
                base_path,
                &base,
                scaled_path,
                &scaled,
                p,
                a.top,
            ));
            if let Some(g) = &gate {
                out.push_str(&gate_verdict_line(g));
                out.push('\n');
            }
            // The per-trace breakdowns follow the headline comparison.
            out.push('\n');
            out.push_str(&single_trace_tables(base_path, &base, a.top));
            out.push('\n');
            out.push_str(&single_trace_tables(scaled_path, &scaled, a.top));
            Ok((out, violations))
        }
        _ => Err(CliError::Usage(
            "analyze requires exactly one of --trace FILE or --compare BASE SCALED".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// A hand-built 1-thread trace: discover[0,100ms] containing
    /// train[5,80ms] and detect[85,99ms].
    fn trace_1t(name: &str) -> String {
        tmp(
            name,
            r#"{"traceEvents":[
  {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
  {"name":"discover","ph":"X","pid":1,"tid":1,"ts":0,"dur":100000},
  {"name":"train","ph":"X","pid":1,"tid":1,"ts":5000,"dur":75000},
  {"name":"detect","ph":"X","pid":1,"tid":1,"ts":85000,"dur":14000}
],"displayTimeUnit":"ms","traceEpochUnix":1.0,"droppedEvents":0,"hostCores":8}"#,
        )
    }

    /// The "4-thread" trace of the same workload: train scales almost
    /// perfectly (75 → 20ms; lost 1.25ms) while detect does not shrink
    /// at all (14 → 14ms; lost 10.5ms) — detect must outrank train in
    /// the attribution table. Worker timelines make inference see 4
    /// threads.
    fn trace_4t(name: &str) -> String {
        tmp(
            name,
            r#"{"traceEvents":[
  {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
  {"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"cf-par-0"}},
  {"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"cf-par-1"}},
  {"name":"thread_name","ph":"M","pid":1,"tid":4,"args":{"name":"cf-par-2"}},
  {"name":"thread_name","ph":"M","pid":1,"tid":5,"args":{"name":"cf-par-3"}},
  {"name":"discover","ph":"X","pid":1,"tid":1,"ts":0,"dur":41000},
  {"name":"train","ph":"X","pid":1,"tid":1,"ts":5000,"dur":20000},
  {"name":"detect","ph":"X","pid":1,"tid":1,"ts":26000,"dur":14000},
  {"name":"par.job","ph":"X","pid":1,"tid":2,"ts":6000,"dur":18000},
  {"name":"par.job","ph":"X","pid":1,"tid":3,"ts":6000,"dur":17500},
  {"name":"par.job","ph":"X","pid":1,"tid":4,"ts":6000,"dur":17000},
  {"name":"par.job","ph":"X","pid":1,"tid":5,"ts":6000,"dur":16500}
],"displayTimeUnit":"ms","traceEpochUnix":1.0,"droppedEvents":0,"hostCores":8}"#,
        )
    }

    #[test]
    fn analyze_single_trace_tables() {
        let path = trace_1t("cf_analyze_single_1t.json");
        let (out, _) = run_analyze(&AnalyzeArgs {
            trace: Some(path.clone()),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("top self-time spans"), "{out}");
        // discover self = 100 - 75 - 14 = 11ms; train self = 75ms.
        assert!(out.contains("| train | 1 | 75.0ms | 75.0ms |"), "{out}");
        assert!(out.contains("| discover | 1 | 100.0ms | 11.0ms |"), "{out}");
        assert!(out.contains("thread utilization"), "{out}");
        assert!(out.contains("serial fraction"), "{out}");
        assert!(out.contains("critical path"), "{out}");
        // No oversubscription on an 8-core host at 1 thread.
        assert!(!out.contains("OVERSUBSCRIBED"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_compare_ranks_non_scaling_span_first() {
        let p1 = trace_1t("cf_analyze_cmp_1t.json");
        let p4 = trace_4t("cf_analyze_cmp_4t.json");
        let (out, _) = run_analyze(&AnalyzeArgs {
            compare: Some((p1.clone(), p4.clone())),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("scaling attribution"), "{out}");
        assert!(out.contains("(p = 4)"), "inferred 4 workers: {out}");
        // detect stayed at 14ms: lost = 14 − 14/4 = 10.5ms; train
        // scaled 75 → 20ms: lost = 20 − 75/4 = 1.25ms. The non-scaling
        // detect must rank above the well-scaling train.
        let detect_pos = out.find("| detect |").expect("detect row");
        let train_pos = out.find("| train |").expect("train row");
        assert!(detect_pos < train_pos, "detect must outrank train: {out}");
        // Amdahl estimate present.
        assert!(out.contains("Amdahl serial fraction"), "{out}");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
    }

    #[test]
    fn analyze_compare_json_is_machine_readable() {
        let p1 = trace_1t("cf_analyze_json_1t.json");
        let p4 = trace_4t("cf_analyze_json_4t.json");
        let (out, _) = run_analyze(&AnalyzeArgs {
            compare: Some((p1.clone(), p4.clone())),
            json: true,
            ..AnalyzeArgs::default()
        })
        .unwrap();
        let v: Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(v["p"].as_f64(), Some(4.0));
        assert!(v["rows"].as_array().unwrap().len() >= 3);
        assert_eq!(v["oversubscribed"].as_bool(), Some(false));
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
    }

    #[test]
    fn analyze_flags_oversubscribed_trace() {
        // 4 workers on a 2-core host.
        let src = trace_4t("cf_analyze_oversub_src.json");
        let contents = std::fs::read_to_string(&src)
            .unwrap()
            .replace("\"hostCores\":8", "\"hostCores\":2");
        let oversub = tmp("cf_analyze_oversub.json", &contents);
        let (out, _) = run_analyze(&AnalyzeArgs {
            trace: Some(oversub.clone()),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("OVERSUBSCRIBED"), "{out}");
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&oversub).ok();
    }

    #[test]
    fn serial_fraction_gate_passes_fails_and_skips() {
        // The fixture pair implies s = (4·0.41/1.00 − 1)/3 ≈ 21.3%.
        let p1 = trace_1t("cf_analyze_gate_1t.json");
        let p4 = trace_4t("cf_analyze_gate_4t.json");

        // Bound above the estimate: OK, zero violations.
        let (out, violations) = run_analyze(&AnalyzeArgs {
            compare: Some((p1.clone(), p4.clone())),
            max_serial_fraction: Some(0.30),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert_eq!(violations, 0, "{out}");
        assert!(out.contains("OK: Amdahl serial fraction 21.3%"), "{out}");

        // Bound below the estimate: FAIL, one violation.
        let (out, violations) = run_analyze(&AnalyzeArgs {
            compare: Some((p1.clone(), p4.clone())),
            max_serial_fraction: Some(0.10),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert_eq!(violations, 1, "{out}");
        assert!(
            out.contains("FAIL: Amdahl serial fraction 21.3% exceeds"),
            "{out}"
        );

        // Same failing bound in JSON mode: the verdict is machine-readable.
        let (out, violations) = run_analyze(&AnalyzeArgs {
            compare: Some((p1.clone(), p4.clone())),
            max_serial_fraction: Some(0.10),
            json: true,
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert_eq!(violations, 1, "{out}");
        let v: Value = serde_json::from_str(out.trim()).unwrap();
        let g = &v["serial_fraction_gate"];
        assert_eq!(g["violated"].as_bool(), Some(true), "{out}");
        assert!((g["fraction"].as_f64().unwrap() - 0.2133).abs() < 1e-3);

        // Oversubscribed scaled trace (4 workers, 2-core host): the gate
        // must skip rather than fail on contention-dominated numbers.
        let oversub_contents = std::fs::read_to_string(&p4)
            .unwrap()
            .replace("\"hostCores\":8", "\"hostCores\":2");
        let p4_oversub = tmp("cf_analyze_gate_4t_oversub.json", &oversub_contents);
        let (out, violations) = run_analyze(&AnalyzeArgs {
            compare: Some((p1.clone(), p4_oversub.clone())),
            max_serial_fraction: Some(0.10),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert_eq!(violations, 0, "{out}");
        assert!(
            out.contains("serial-fraction gate") && out.contains("skipped"),
            "{out}"
        );

        // Usage errors: bound outside [0, 1], or no compare pair.
        assert!(matches!(
            run_analyze(&AnalyzeArgs {
                compare: Some((p1.clone(), p4.clone())),
                max_serial_fraction: Some(1.5),
                ..AnalyzeArgs::default()
            }),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_analyze(&AnalyzeArgs {
                trace: Some(p1.clone()),
                max_serial_fraction: Some(0.5),
                ..AnalyzeArgs::default()
            }),
            Err(CliError::Usage(_))
        ));

        for p in [p1, p4, p4_oversub] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn flamegraph_flag_writes_collapsed_stacks() {
        let path = trace_1t("cf_analyze_flame_1t.json");
        let folded = std::env::temp_dir().join(format!("cf_analyze_{}.folded", std::process::id()));
        let (out, _) = run_analyze(&AnalyzeArgs {
            trace: Some(path.clone()),
            flamegraph: Some(folded.to_string_lossy().into_owned()),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("collapsed stacks written to"), "{out}");
        let text = std::fs::read_to_string(&folded).unwrap();
        // Fixture self-times: discover 11ms, train 75ms, detect 14ms —
        // all nested under main;discover.
        assert!(text.contains("main;discover 11000\n"), "{text}");
        assert!(text.contains("main;discover;train 75000\n"), "{text}");
        assert!(text.contains("main;discover;detect 14000\n"), "{text}");

        // --flamegraph is a single-trace feature.
        let other = trace_1t("cf_analyze_flame_other.json");
        assert!(matches!(
            run_analyze(&AnalyzeArgs {
                compare: Some((path.clone(), other.clone())),
                flamegraph: Some(folded.to_string_lossy().into_owned()),
                ..AnalyzeArgs::default()
            }),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&other).ok();
        std::fs::remove_file(&folded).ok();
    }

    #[test]
    fn analyze_degrades_on_partial_inputs() {
        // Empty trace: clear one-liner, no panic.
        let empty = tmp(
            "cf_analyze_empty.json",
            r#"{"traceEvents":[],"droppedEvents":0}"#,
        );
        let (out, _) = run_analyze(&AnalyzeArgs {
            trace: Some(empty.clone()),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("no events"), "{out}");

        // Counters-only trace.
        let counters = tmp(
            "cf_analyze_counters.json",
            r#"{"traceEvents":[
  {"name":"mem.pool.hit","ph":"C","pid":1,"tid":1,"ts":1.0,"args":{"value":5}}
],"droppedEvents":3}"#,
        );
        let (out, _) = run_analyze(&AnalyzeArgs {
            trace: Some(counters.clone()),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("counter/instant"), "{out}");

        // Compare with one empty side: diagnostic, not a panic.
        let full = trace_1t("cf_analyze_partial_full.json");
        let (out, _) = run_analyze(&AnalyzeArgs {
            compare: Some((empty.clone(), full.clone())),
            ..AnalyzeArgs::default()
        })
        .unwrap();
        assert!(out.contains("nothing to compare"), "{out}");

        // Not-a-trace JSON: clear error.
        let bogus = tmp("cf_analyze_bogus.json", r#"{"cells":[]}"#);
        let err = run_analyze(&AnalyzeArgs {
            trace: Some(bogus.clone()),
            ..AnalyzeArgs::default()
        })
        .unwrap_err();
        assert!(format!("{err}").contains("no traceEvents"), "{err}");

        for p in [empty, counters, full, bogus] {
            std::fs::remove_file(&p).ok();
        }
    }
}
