//! `causalformer` — temporal causal discovery on CSV time series.
//! Thin shell over [`cf_cli`]; see `causalformer --help`.

use cf_cli::{parse, run_discover, run_generate, run_report, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match parse(&args) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            return;
        }
        Ok(Command::Discover(a)) => run_discover(&a),
        Ok(Command::Generate(a)) => run_generate(&a),
        Ok(Command::Report(a)) => run_report(&a),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
