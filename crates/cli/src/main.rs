//! `causalformer` — temporal causal discovery on CSV time series.
//! Thin shell over [`cf_cli`]; see `causalformer --help`.

use cf_cli::{
    parse, run_analyze, run_bench_diff, run_discover, run_generate, run_monitor, run_report,
    CliError, Command, USAGE,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match parse(&args) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            return;
        }
        Ok(Command::Discover(a)) => run_discover(&a),
        Ok(Command::Generate(a)) => run_generate(&a),
        Ok(Command::Report(a)) => run_report(&a),
        Ok(Command::Analyze(a)) => match run_analyze(&a) {
            // A gate violation (--max-serial-fraction) is a successful
            // analysis with a failing verdict: print it, then exit 1.
            Ok((report, violations)) => {
                print!("{report}");
                std::process::exit(if violations == 0 { 0 } else { 1 });
            }
            Err(e) => Err(e),
        },
        Ok(Command::Monitor(a)) => run_monitor(&a),
        Ok(Command::BenchDiff(a)) => match run_bench_diff(&a) {
            // A regression is a successful comparison with a failing
            // verdict: print the table, then exit 1 so CI gates on it.
            Ok((report, regressions)) => {
                print!("{report}");
                std::process::exit(if regressions == 0 { 0 } else { 1 });
            }
            Err(e) => Err(e),
        },
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Usage-class errors exit 2 whether caught at parse time or
            // during validation inside a run_* function.
            std::process::exit(match e {
                CliError::Usage(_) => 2,
                CliError::Run(_) => 1,
            });
        }
    }
}
