//! `causalformer bench-diff` — cell-by-cell comparison of two
//! `BENCH_*.json` files (the output of the `par_baseline` bench
//! harness).
//!
//! Cells are keyed `(method, dataset, threads)`; the scaling benchmark
//! `lorenz96_n20_discover` contributes cells under its own name. For
//! each cell present in both files the ratio `new/base` of wall seconds
//! is computed; cells whose ratio exceeds `--threshold` count as
//! regressions and make the command exit nonzero, so CI can gate on it.
//!
//! Cells recorded with more threads than the producing host had cores
//! are annotated `oversubscribed` — their wall times measure scheduler
//! contention, not scaling, and a "regression" there is expected (this
//! is exactly the committed `BENCH_PR4.json` 4-thread story).
//!
//! When both files carry the buffer-pool counters (`alloc_count`,
//! `pool_misses` per timing — recorded since `BENCH_PR4.json`), the diff
//! shows them as informational `base→new` columns; allocation drift
//! never gates, only the wall-time ratio does.
//!
//! Multi-thread cells additionally get a parallel-efficiency column,
//! `T1 / (N · TN)` against the same file's 1-thread cell (1.0 = perfect
//! linear scaling). Efficiency below 0.5 on a cell that was *not*
//! oversubscribed earns a `low-eff` note and a top-level warning —
//! informational, never gating, since wall-time thresholds already do.

use crate::CliError;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed `bench-diff` arguments.
#[derive(Debug, Clone)]
pub struct BenchDiffArgs {
    /// Baseline bench JSON path.
    pub baseline: String,
    /// New bench JSON path.
    pub new: String,
    /// Regression threshold on the `new/base` wall-time ratio
    /// (default 1.10 = fail on >10% slowdown).
    pub threshold: f64,
    /// Emit machine-readable JSON instead of the markdown table.
    pub json: bool,
}

impl Default for BenchDiffArgs {
    fn default() -> Self {
        Self {
            baseline: String::new(),
            new: String::new(),
            threshold: 1.10,
            json: false,
        }
    }
}

/// One benchmark cell: a (method, dataset, threads) wall-time sample.
#[derive(Debug, Clone)]
struct Cell {
    secs: f64,
    /// Recorded with more threads than the host had cores.
    oversubscribed: bool,
    /// Fresh heap allocations during the cell's run (absent in older
    /// baseline files).
    alloc_count: Option<u64>,
    /// Buffer-pool free-list misses during the cell's run.
    pool_misses: Option<u64>,
}

type CellKey = (String, String, u64);

/// Flattens one bench JSON into keyed cells plus the recording host's
/// core count. Unknown fields are ignored, so the diff keeps working as
/// the harness grows columns.
fn load_bench(path: &str) -> Result<(BTreeMap<CellKey, Cell>, Option<u64>), CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Run(format!("reading {path}: {e}")))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| CliError::Run(format!("{path}: bad JSON: {e}")))?;
    let host_cores = v.get("host_cores").and_then(Value::as_u64);
    let mut cells = BTreeMap::new();
    let mut add = |method: &str, dataset: &str, timing: &Value| {
        let (Some(threads), Some(secs)) = (
            timing.get("threads").and_then(Value::as_u64),
            timing.get("secs").and_then(Value::as_f64),
        ) else {
            return;
        };
        cells.insert(
            (method.to_string(), dataset.to_string(), threads),
            Cell {
                secs,
                oversubscribed: host_cores.is_some_and(|c| threads > c),
                alloc_count: timing.get("alloc_count").and_then(Value::as_u64),
                pool_misses: timing.get("pool_misses").and_then(Value::as_u64),
            },
        );
    };
    for cell in v
        .get("cells")
        .and_then(Value::as_array)
        .map(Vec::as_slice)
        .unwrap_or_default()
    {
        let method = cell.get("method").and_then(Value::as_str).unwrap_or("?");
        let dataset = cell.get("dataset").and_then(Value::as_str).unwrap_or("?");
        for timing in cell
            .get("wall_secs")
            .and_then(Value::as_array)
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            add(method, dataset, timing);
        }
    }
    for section in ["lorenz96_n20_discover", "lorenz96_n20_discover_f32"] {
        for timing in v
            .get(section)
            .and_then(Value::as_array)
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            add(section, "-", timing);
        }
    }
    if cells.is_empty() {
        return Err(CliError::Run(format!(
            "{path}: no benchmark cells found — not a BENCH_*.json file?"
        )));
    }
    Ok((cells, host_cores))
}

/// One row of the diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Method name (or `lorenz96_n20_discover` for the scaling bench).
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Thread count of the cell.
    pub threads: u64,
    /// Baseline wall seconds.
    pub base_secs: f64,
    /// New wall seconds.
    pub new_secs: f64,
    /// `new/base` ratio; >1 is a slowdown.
    pub ratio: f64,
    /// Ratio exceeded the threshold.
    pub regressed: bool,
    /// Either side was recorded oversubscribed.
    pub oversubscribed: bool,
    /// Baseline allocation count, when the baseline recorded it.
    pub base_allocs: Option<u64>,
    /// New allocation count. Informational only — allocation drift never
    /// gates; the wall-time ratio does.
    pub new_allocs: Option<u64>,
    /// Baseline pool-miss count, when recorded.
    pub base_misses: Option<u64>,
    /// New pool-miss count (informational).
    pub new_misses: Option<u64>,
    /// Baseline parallel efficiency `T1/(N·TN)` vs the baseline file's
    /// own 1-thread cell; absent for 1-thread cells or when the file has
    /// no matching 1-thread cell.
    pub base_eff: Option<f64>,
    /// New-side parallel efficiency (same definition, new file).
    pub new_eff: Option<f64>,
}

impl DiffRow {
    /// Informational warning condition: measured efficiency under 0.5 on
    /// a cell that was *not* oversubscribed (on an oversubscribed host
    /// low efficiency is expected and says nothing about the scheduler).
    pub fn low_efficiency(&self) -> bool {
        !self.oversubscribed && self.new_eff.is_some_and(|e| e < 0.5)
    }
}

/// The full diff: rows plus cells present on only one side.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Compared cells, worst ratio first.
    pub rows: Vec<DiffRow>,
    /// Keys only in the baseline.
    pub only_base: Vec<CellKey>,
    /// Keys only in the new file.
    pub only_new: Vec<CellKey>,
    /// Threshold used.
    pub threshold: f64,
    /// Core count of the host that recorded the baseline file, when the
    /// file carries one — lets consumers judge oversubscription without
    /// re-reading the inputs.
    pub base_host_cores: Option<u64>,
    /// Core count of the host that recorded the new file.
    pub new_host_cores: Option<u64>,
}

impl DiffReport {
    /// Number of regressed cells; nonzero means the command fails.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }
}

/// Compares two bench files cell-by-cell.
pub fn diff(baseline: &str, new: &str, threshold: f64) -> Result<DiffReport, CliError> {
    let (base, base_host_cores) = load_bench(baseline)?;
    let (newer, new_host_cores) = load_bench(new)?;
    // Parallel efficiency of an N-thread cell against the *same file's*
    // 1-thread cell for the same (method, dataset): T1/(N·TN).
    let efficiency = |cells: &BTreeMap<CellKey, Cell>, key: &CellKey, secs: f64| -> Option<f64> {
        if key.2 <= 1 || secs <= 0.0 {
            return None;
        }
        let one = cells.get(&(key.0.clone(), key.1.clone(), 1))?;
        (one.secs > 0.0).then(|| one.secs / (key.2 as f64 * secs))
    };
    let mut rows = Vec::new();
    let mut only_base = Vec::new();
    for (key, b) in &base {
        match newer.get(key) {
            Some(n) => {
                let ratio = if b.secs > 0.0 {
                    n.secs / b.secs
                } else {
                    f64::INFINITY
                };
                rows.push(DiffRow {
                    method: key.0.clone(),
                    dataset: key.1.clone(),
                    threads: key.2,
                    base_secs: b.secs,
                    new_secs: n.secs,
                    ratio,
                    regressed: ratio > threshold,
                    oversubscribed: b.oversubscribed || n.oversubscribed,
                    base_allocs: b.alloc_count,
                    new_allocs: n.alloc_count,
                    base_misses: b.pool_misses,
                    new_misses: n.pool_misses,
                    base_eff: efficiency(&base, key, b.secs),
                    new_eff: efficiency(&newer, key, n.secs),
                });
            }
            None => only_base.push(key.clone()),
        }
    }
    let only_new: Vec<CellKey> = newer
        .keys()
        .filter(|k| !base.contains_key(*k))
        .cloned()
        .collect();
    rows.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    Ok(DiffReport {
        rows,
        only_base,
        only_new,
        threshold,
        base_host_cores,
        new_host_cores,
    })
}

fn markdown(report: &DiffReport, baseline: &str, new: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench diff: {baseline} → {new} (threshold {:.2}×)",
        report.threshold
    );
    if report.rows.iter().any(|r| r.oversubscribed) {
        let _ = writeln!(
            out,
            "WARNING: cells marked `oversub` ran more threads than the recording host \
             had cores — their wall times measure contention, not scaling"
        );
    }
    if report.rows.iter().any(DiffRow::low_efficiency) {
        let _ = writeln!(
            out,
            "WARNING: cells marked `low-eff` measured parallel efficiency below 0.50 \
             on a non-oversubscribed host — threads are mostly waiting, not working"
        );
    }
    let _ = writeln!(
        out,
        "| method | dataset | threads | base | new | ratio | eff | allocs | misses | |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|---:|---|");
    // The alloc / pool-miss columns are informational: they surface
    // allocator drift next to the wall-time ratio but never gate.
    let counter = |base: Option<u64>, new: Option<u64>| match (base, new) {
        (Some(b), Some(n)) => format!("{b}→{n}"),
        _ => "-".to_string(),
    };
    // Efficiency is informational too: `T1/(N·TN)` per side, dash for
    // 1-thread cells (the definition needs a same-file 1T reference).
    let eff_fmt = |e: Option<f64>| e.map_or("-".to_string(), |v| format!("{v:.2}"));
    let eff_col = |base: Option<f64>, new: Option<f64>| match (base, new) {
        (None, None) => "-".to_string(),
        (b, n) => format!("{}→{}", eff_fmt(b), eff_fmt(n)),
    };
    for r in &report.rows {
        let mut note = String::new();
        let push_note = |s: &str, note: &mut String| {
            if !note.is_empty() {
                note.push(' ');
            }
            note.push_str(s);
        };
        if r.regressed {
            push_note("REGRESSED", &mut note);
        }
        if r.low_efficiency() {
            push_note("low-eff", &mut note);
        }
        if r.oversubscribed {
            push_note("oversub", &mut note);
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.4}s | {:.4}s | {:.2}× | {} | {} | {} | {note} |",
            r.method,
            r.dataset,
            r.threads,
            r.base_secs,
            r.new_secs,
            r.ratio,
            eff_col(r.base_eff, r.new_eff),
            counter(r.base_allocs, r.new_allocs),
            counter(r.base_misses, r.new_misses),
        );
    }
    for (label, keys) in [
        ("only in baseline", &report.only_base),
        ("only in new", &report.only_new),
    ] {
        for (m, d, t) in keys {
            let _ = writeln!(out, "note: cell ({m}, {d}, {t}T) {label} — not compared");
        }
    }
    let n = report.regressions();
    let _ = writeln!(
        out,
        "{}",
        if n == 0 {
            format!("OK: no cell regressed beyond {:.2}×", report.threshold)
        } else {
            format!(
                "FAIL: {n} cell(s) regressed beyond {:.2}×",
                report.threshold
            )
        }
    );
    out
}

fn machine_json(report: &DiffReport, baseline: &str, new: &str) -> String {
    let mut rows = cf_obs::json::Arr::new();
    for r in &report.rows {
        let mut obj = cf_obs::json::Obj::new()
            .str("method", &r.method)
            .str("dataset", &r.dataset)
            .u64("threads", r.threads)
            .f64("base_secs", r.base_secs)
            .f64("new_secs", r.new_secs)
            .f64("ratio", r.ratio)
            .bool("regressed", r.regressed)
            .bool("oversubscribed", r.oversubscribed);
        // Informational allocator columns, present only when both sides
        // recorded the counters.
        if let (Some(b), Some(n)) = (r.base_allocs, r.new_allocs) {
            obj = obj.u64("base_allocs", b).u64("new_allocs", n);
        }
        if let (Some(b), Some(n)) = (r.base_misses, r.new_misses) {
            obj = obj.u64("base_misses", b).u64("new_misses", n);
        }
        // Parallel efficiency `T1/(N·TN)`, per side, relative to the same
        // file's 1-thread cell; absent for 1-thread rows.
        if let Some(e) = r.base_eff {
            obj = obj.f64("base_eff", e);
        }
        if let Some(e) = r.new_eff {
            obj = obj
                .f64("new_eff", e)
                .bool("low_efficiency", r.low_efficiency());
        }
        rows = rows.raw(&obj.finish());
    }
    let key_arr = |keys: &[CellKey]| {
        let mut arr = cf_obs::json::Arr::new();
        for (m, d, t) in keys {
            arr = arr.raw(
                &cf_obs::json::Obj::new()
                    .str("method", m)
                    .str("dataset", d)
                    .u64("threads", *t)
                    .finish(),
            );
        }
        arr.finish()
    };
    let mut obj = cf_obs::json::Obj::new()
        .str("schema", "bench-diff-v1")
        .str("baseline", baseline)
        .str("new", new)
        .f64("threshold", report.threshold)
        .u64("regressions", report.regressions() as u64);
    // Top-level host context for both sides, so consumers can judge
    // oversubscription (threads > cores) without re-opening the inputs.
    if let Some(c) = report.base_host_cores {
        obj = obj.u64("base_host_cores", c);
    }
    if let Some(c) = report.new_host_cores {
        obj = obj.u64("new_host_cores", c);
    }
    obj.raw("rows", &rows.finish())
        .raw("only_base", &key_arr(&report.only_base))
        .raw("only_new", &key_arr(&report.only_new))
        .finish()
}

/// Executes `bench-diff`. Returns the rendered output and the number of
/// regressions; `main` maps a nonzero count to a nonzero exit code.
pub fn run_bench_diff(a: &BenchDiffArgs) -> Result<(String, usize), CliError> {
    if !(a.threshold.is_finite() && a.threshold > 0.0) {
        return Err(CliError::Usage(
            "--threshold must be a positive ratio (e.g. 1.10)".into(),
        ));
    }
    let report = diff(&a.baseline, &a.new, a.threshold)?;
    let out = if a.json {
        let mut s = machine_json(&report, &a.baseline, &a.new);
        s.push('\n');
        s
    } else {
        markdown(&report, &a.baseline, &a.new)
    };
    Ok((out, report.regressions()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(cf_lorenz_4t_secs: f64, host_cores: u64) -> String {
        format!(
            r#"{{
  "host_cores": {host_cores},
  "thread_counts": [1, 4],
  "cells": [
    {{"method": "CausalFormer", "dataset": "Fork", "f1_mean": 0.88,
      "wall_secs": [
        {{"threads": 1, "secs": 0.156}},
        {{"threads": 4, "secs": 0.186}}
      ]}},
    {{"method": "CausalFormer", "dataset": "Lorenz96", "f1_mean": 0.59,
      "wall_secs": [
        {{"threads": 1, "secs": 0.308}},
        {{"threads": 4, "secs": {cf_lorenz_4t_secs}}}
      ]}}
  ],
  "lorenz96_n20_discover": [
    {{"threads": 1, "secs": 0.351}},
    {{"threads": 4, "secs": 0.407}}
  ]
}}"#
        )
    }

    fn tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn identical_files_have_zero_regressions() {
        let a = tmp("cf_bd_same_a.json", &bench_json(0.372, 8));
        let b = tmp("cf_bd_same_b.json", &bench_json(0.372, 8));
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert_eq!(regressions, 0, "{out}");
        assert!(out.contains("OK: no cell regressed"), "{out}");
        // All six cells (4 matrix + 2 scaling) compared at ratio 1.00×.
        assert_eq!(out.matches("1.00×").count(), 6, "{out}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn exactly_one_regressed_cell_is_named_and_counted() {
        let a = tmp("cf_bd_reg_a.json", &bench_json(0.372, 8));
        // CausalFormer/Lorenz96 @4T slows 0.372 → 0.500 (1.34×); every
        // other cell is identical.
        let b = tmp("cf_bd_reg_b.json", &bench_json(0.500, 8));
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            threshold: 1.15,
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert_eq!(regressions, 1, "{out}");
        assert!(out.contains("FAIL: 1 cell(s) regressed"), "{out}");
        // The worst ratio sorts first and carries the marker.
        let first_row = out.lines().find(|l| l.starts_with("| Causal")).unwrap();
        assert!(
            first_row.contains("Lorenz96") && first_row.contains("REGRESSED"),
            "{out}"
        );
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn oversubscribed_cells_are_annotated() {
        // host_cores 1 with 4-thread cells — the committed BENCH_PR4
        // situation.
        let a = tmp("cf_bd_over_a.json", &bench_json(0.372, 1));
        let b = tmp("cf_bd_over_b.json", &bench_json(0.372, 1));
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert_eq!(regressions, 0);
        assert!(out.contains("WARNING"), "{out}");
        // Three 4-thread cells, each annotated.
        assert_eq!(out.matches("oversub |").count(), 3, "{out}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn json_output_round_trips() {
        let a = tmp("cf_bd_json_a.json", &bench_json(0.372, 8));
        let b = tmp("cf_bd_json_b.json", &bench_json(0.500, 8));
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            threshold: 1.15,
            json: true,
        })
        .unwrap();
        assert_eq!(regressions, 1);
        let v: Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(v["schema"].as_str(), Some("bench-diff-v1"));
        assert_eq!(v["regressions"].as_u64(), Some(1));
        assert_eq!(v["rows"].as_array().unwrap().len(), 6);
        assert_eq!(v["rows"][0]["regressed"].as_bool(), Some(true));
        assert_eq!(v["rows"][0]["dataset"].as_str(), Some("Lorenz96"));
        // Host context for both sides rides at the top level.
        assert_eq!(v["base_host_cores"].as_u64(), Some(8));
        assert_eq!(v["new_host_cores"].as_u64(), Some(8));
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn alloc_counters_render_informationally_and_never_gate() {
        // Allocations explode 10 → 9000 while wall time is unchanged: the
        // drift must be visible in both output modes but regress nothing.
        let with_counters = |allocs: u64| {
            format!(
                r#"{{
  "host_cores": 8,
  "cells": [
    {{"method": "CausalFormer", "dataset": "Fork",
      "wall_secs": [
        {{"threads": 1, "secs": 0.2, "alloc_count": {allocs}, "pool_misses": 3}}
      ]}}
  ]
}}"#
            )
        };
        let a = tmp("cf_bd_alloc_a.json", &with_counters(10));
        let b = tmp("cf_bd_alloc_b.json", &with_counters(9000));
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert_eq!(regressions, 0, "{out}");
        assert!(out.contains("| 10→9000 | 3→3 |"), "{out}");
        let (json_out, _) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            json: true,
            ..BenchDiffArgs::default()
        })
        .unwrap();
        let v: Value = serde_json::from_str(json_out.trim()).unwrap();
        assert_eq!(v["rows"][0]["base_allocs"].as_u64(), Some(10));
        assert_eq!(v["rows"][0]["new_allocs"].as_u64(), Some(9000));
        assert_eq!(v["rows"][0]["new_misses"].as_u64(), Some(3));
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn baselines_without_counters_render_a_dash() {
        // The fixture JSON carries no counters at all — the columns fall
        // back to "-" and the JSON rows omit the fields.
        let a = tmp("cf_bd_nocnt_a.json", &bench_json(0.372, 8));
        let b = tmp("cf_bd_nocnt_b.json", &bench_json(0.372, 8));
        let (out, _) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert!(out.contains("| - | - |"), "{out}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn unmatched_cells_are_reported_not_compared() {
        let a = tmp("cf_bd_uk_a.json", &bench_json(0.372, 8));
        // New file lacks the scaling section entirely.
        let trimmed = bench_json(0.372, 8).replace("lorenz96_n20_discover", "renamed_section");
        let b = tmp("cf_bd_uk_b.json", &trimmed);
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert_eq!(regressions, 0, "{out}");
        assert!(out.contains("only in baseline"), "{out}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn committed_baselines_self_diff_clean() {
        // Every committed baseline must self-compare with zero
        // regressions; BENCH_PR4 (host_cores 1 with 4T cells) must also
        // carry the oversubscription warning.
        for name in [
            "BENCH_PR4.json",
            "BENCH_PR7.json",
            "BENCH_PR8.json",
            "BENCH_PR9.json",
            "BENCH_CI.json",
        ] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            if !std::path::Path::new(&path).exists() {
                continue;
            }
            let (out, regressions) = run_bench_diff(&BenchDiffArgs {
                baseline: path.clone(),
                new: path.clone(),
                ..BenchDiffArgs::default()
            })
            .unwrap();
            assert_eq!(regressions, 0, "{name}: {out}");
            if name == "BENCH_PR4.json" {
                assert!(out.contains("oversub"), "{out}");
            }
        }
    }

    #[test]
    fn bench_pr7_carries_both_dtypes_with_counters() {
        // The PR7 baseline records the CausalFormer cell matrix at both
        // precisions plus the f32 lorenz section; its counters must make
        // it into a diff against itself.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
        if !std::path::Path::new(path).exists() {
            return;
        }
        let (out, _) = run_bench_diff(&BenchDiffArgs {
            baseline: path.into(),
            new: path.into(),
            json: true,
            ..BenchDiffArgs::default()
        })
        .unwrap();
        let v: Value = serde_json::from_str(out.trim()).unwrap();
        let rows = v["rows"].as_array().unwrap();
        let has = |m: &str| rows.iter().any(|r| r["method"].as_str() == Some(m));
        assert!(has("CausalFormer"), "{out}");
        assert!(has("CausalFormer-f32"), "{out}");
        assert!(has("lorenz96_n20_discover_f32"), "{out}");
        assert!(
            rows.iter().all(|r| r["base_allocs"].as_u64().is_some()),
            "every PR7 cell carries pool counters: {out}"
        );
    }

    #[test]
    fn bench_pr8_out_of_core_cell_is_under_budget() {
        // The PR8 baseline must prove the out-of-core contract: the raw
        // series at least 10× the RSS budget, the recorded peak RSS under
        // it, and the cell present as a diffable wall-time entry.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
        if !std::path::Path::new(path).exists() {
            return;
        }
        let text = std::fs::read_to_string(path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let oo = &v["out_of_core"];
        let peak = oo["peak_rss_bytes"].as_u64().unwrap();
        let budget = oo["rss_budget_bytes"].as_u64().unwrap();
        assert!(peak > 0 && peak < budget, "peak {peak} vs budget {budget}");
        assert!(
            oo["raw_over_budget"].as_f64().unwrap() >= 10.0,
            "raw series must dwarf the RSS budget: {oo}"
        );
        let (cells, _) = load_bench(path).unwrap();
        assert!(cells.keys().any(|(m, _, _)| m == "CausalFormer-oocore"));
    }

    #[test]
    fn efficiency_column_warns_below_half_on_real_cores_only() {
        // host_cores 8, so the 4T cells are NOT oversubscribed. Fixture
        // efficiencies: Fork 0.156/(4·0.186)=0.21, Lorenz 0.308/(4·0.372)
        // =0.21, scaling 0.351/(4·0.407)=0.22 — all below the 0.5 bar.
        let a = tmp("cf_bd_eff_a.json", &bench_json(0.372, 8));
        let b = tmp("cf_bd_eff_b.json", &bench_json(0.372, 8));
        let (out, regressions) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        // Informational: annotates but never gates.
        assert_eq!(regressions, 0, "{out}");
        assert!(out.contains("low-eff"), "{out}");
        assert!(
            out.contains("below 0.50") && out.contains("WARNING"),
            "{out}"
        );
        // The column renders both sides; 1T rows have no efficiency.
        assert!(out.contains("| 0.21→0.21 |"), "{out}");
        let one_t_row = out
            .lines()
            .find(|l| l.starts_with("| CausalFormer | Fork | 1 "))
            .unwrap();
        assert!(one_t_row.contains("| - | - | - |"), "{out}");

        // Machine JSON carries the per-side values and the flag.
        let (json_out, _) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            json: true,
            ..BenchDiffArgs::default()
        })
        .unwrap();
        let v: Value = serde_json::from_str(json_out.trim()).unwrap();
        let four_t = v["rows"]
            .as_array()
            .unwrap()
            .iter()
            .find(|r| r["threads"].as_u64() == Some(4))
            .unwrap();
        let eff = four_t["new_eff"].as_f64().unwrap();
        assert!((0.15..0.5).contains(&eff), "{four_t}");
        assert_eq!(four_t["low_efficiency"].as_bool(), Some(true));
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();

        // Same numbers on a 1-core host: the cells are oversubscribed, so
        // contention-dominated timings must NOT trip the low-eff warning.
        let a = tmp("cf_bd_eff_1c_a.json", &bench_json(0.372, 1));
        let b = tmp("cf_bd_eff_1c_b.json", &bench_json(0.372, 1));
        let (out, _) = run_bench_diff(&BenchDiffArgs {
            baseline: a.clone(),
            new: b.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap();
        assert!(!out.contains("low-eff"), "{out}");
        assert!(out.contains("oversub"), "{out}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn rejects_non_bench_files_and_bad_threshold() {
        let bogus = tmp("cf_bd_bogus.json", r#"{"traceEvents": []}"#);
        let err = run_bench_diff(&BenchDiffArgs {
            baseline: bogus.clone(),
            new: bogus.clone(),
            ..BenchDiffArgs::default()
        })
        .unwrap_err();
        assert!(format!("{err}").contains("no benchmark cells"), "{err}");
        assert!(matches!(
            run_bench_diff(&BenchDiffArgs {
                baseline: bogus.clone(),
                new: bogus.clone(),
                threshold: 0.0,
                ..BenchDiffArgs::default()
            }),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&bogus).ok();
    }
}
