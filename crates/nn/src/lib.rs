//! # cf-nn
//!
//! Neural-network building blocks on top of [`cf_tensor`]: a named parameter
//! store, layers (linear, LSTM cell), optimizers (Adam, SGD), loss
//! composition helpers, and training-loop utilities (early stopping,
//! gradient clipping).
//!
//! The division of labour with `cf-tensor` mirrors the PyTorch split the
//! paper's implementation relies on: `cf-tensor` is the autograd engine,
//! `cf-nn` owns parameters and optimisation state across steps. Because the
//! tape is rebuilt every step, parameters live in a [`ParamStore`] and are
//! *bound* onto a fresh [`Tape`](cf_tensor::Tape) at the start of each
//! forward pass via [`ParamStore::bind`]:
//!
//! ```
//! use cf_nn::{ParamStore, Adam, Optimizer};
//! use cf_tensor::{Tape, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Tensor::from_slice(&[2.0]));
//! let mut adam = Adam::new(0.1);
//! for _ in 0..400 {
//!     let mut tape = Tape::new();
//!     let bound = store.bind(&mut tape);
//!     // loss = (w - 5)²
//!     let target = tape.constant(Tensor::from_slice(&[5.0]));
//!     let diff = tape.sub(bound.var(w), target);
//!     let sq = tape.square(diff);
//!     let loss = tape.sum_all(sq);
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &bound, &grads);
//! }
//! assert!((store.value(w).item() - 5.0).abs() < 1e-2);
//! ```

// Numeric kernels in this workspace use explicit index loops on purpose:
// the indices mirror the paper's subscripts (i, j, t, τ, u) and several
// co-indexed buffers are updated per iteration, which iterator chains
// would obscure.
#![allow(clippy::needless_range_loop)]

mod layers;
mod optim;
mod param;
mod train;

pub use layers::{Linear, LstmCell, LstmState};
pub use optim::{
    clip_global_norm, Adam, AdamBase, AdamState, AdamStateBase, Optimizer, Sgd, SgdBase,
};
pub use param::{BoundParams, ParamId, ParamStore, ParamStoreBase};
pub use train::{EarlyStopper, StopDecision, StopperState};
