//! Named parameter storage shared across training steps.

use cf_tensor::{GradientsBase, Scalar, TapeBase, TensorBase, VarId};

/// Handle to a parameter registered in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Position of the parameter in its store (registration order).
    pub fn index(self) -> usize {
        self.0
    }

    /// Crate-internal constructor (used by unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_raw(i: usize) -> Self {
        ParamId(i)
    }
}

struct Param<E: Scalar> {
    name: String,
    value: TensorBase<E>,
}

/// Owns model parameters between steps.
///
/// The autodiff tape is rebuilt each training step; a `ParamStore` is
/// the durable home of the weights. [`ParamStoreBase::bind`] copies every
/// parameter onto a fresh tape as a gradient-requiring leaf and returns a
/// [`BoundParams`] that maps [`ParamId`] → [`VarId`] for that step.
#[derive(Default)]
pub struct ParamStoreBase<E: Scalar = f64> {
    params: Vec<Param<E>>,
}

/// The `f64` parameter store (the historical API).
pub type ParamStore = ParamStoreBase<f64>;

impl<E: Scalar> ParamStoreBase<E> {
    /// An empty store.
    pub fn new() -> Self {
        Self { params: Vec::new() }
    }

    /// Registers a parameter with an initial value. Names are for debugging
    /// and error messages; duplicates are allowed but discouraged.
    pub fn register(&mut self, name: impl Into<String>, value: TensorBase<E>) -> ParamId {
        self.params.push(Param {
            name: name.into(),
            value,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` iff no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &TensorBase<E> {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut TensorBase<E> {
        &mut self.params[id.0].value
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over all parameter ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Copies all parameter values, in registration order (for early
    /// stopping's best-weights snapshot).
    pub fn snapshot(&self) -> Vec<TensorBase<E>> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores values captured by [`ParamStoreBase::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's parameters.
    pub fn restore(&mut self, snapshot: &[TensorBase<E>]) {
        assert_eq!(
            snapshot.len(),
            self.params.len(),
            "snapshot/store parameter count mismatch"
        );
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(
                p.value.shape(),
                s.shape(),
                "snapshot shape mismatch for {}",
                p.name
            );
            p.value = s.clone();
        }
    }

    /// Copies every parameter onto `tape` as a gradient-requiring leaf.
    pub fn bind(&self, tape: &mut TapeBase<E>) -> BoundParams {
        let vars = self
            .params
            .iter()
            .map(|p| tape.leaf(p.value.clone(), true))
            .collect();
        BoundParams { vars }
    }
}

/// The per-step mapping from [`ParamId`] to tape [`VarId`] produced by
/// [`ParamStoreBase::bind`]. Dtype-agnostic: it holds only the id mapping,
/// so the element type is inferred from the `Gradients` it is paired with.
pub struct BoundParams {
    vars: Vec<VarId>,
}

impl BoundParams {
    /// The tape variable bound to `id` this step.
    pub fn var(&self, id: ParamId) -> VarId {
        self.vars[id.index()]
    }

    /// Collects `(ParamId, gradient)` pairs for every bound parameter that
    /// received a gradient.
    pub fn gradients<'a, 'g: 'a, E: Scalar>(
        &'a self,
        grads: &'g GradientsBase<E>,
    ) -> impl Iterator<Item = (ParamId, &'g TensorBase<E>)> + 'a {
        self.vars
            .iter()
            .enumerate()
            .filter_map(move |(i, &v)| grads.get(v).map(|g| (ParamId(i), g)))
    }

    /// Moves every bound parameter's gradient out of `grads` into `sink` —
    /// the ownership counterpart of [`BoundParams::gradients`] for callers
    /// that would otherwise clone each tensor (the trainer ships per-window
    /// gradients to its reducer; moving keeps the buffers pooled).
    pub fn take_gradients<E: Scalar>(
        &self,
        grads: &mut GradientsBase<E>,
        mut sink: impl FnMut(ParamId, TensorBase<E>),
    ) {
        for (i, &v) in self.vars.iter().enumerate() {
            if let Some(g) = grads.take(v) {
                sink(ParamId(i), g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_tensor::{Tape, Tensor};

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(&[2, 3]));
        let b = store.register("b", Tensor::ones(&[4]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.value(b).sum(), 4.0);
    }

    #[test]
    fn bind_produces_grad_leaves() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::from_slice(&[3.0]));
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        assert!(tape.requires_grad(bound.var(a)));
        assert_eq!(tape.value(bound.var(a)).item(), 3.0);
    }

    #[test]
    fn gradients_iterator_pairs_params_with_grads() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::from_slice(&[2.0]));
        let unused = store.register("unused", Tensor::from_slice(&[1.0]));
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        let sq = tape.square(bound.var(a));
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let collected: Vec<_> = bound.gradients(&grads).collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, a);
        assert_eq!(collected[0].1.item(), 4.0);
        assert_ne!(collected[0].0, unused);
    }

    #[test]
    fn f32_store_roundtrips_snapshot() {
        let mut store = ParamStoreBase::<f32>::new();
        let a = store.register("a", TensorBase::<f32>::zeros(&[2, 2]));
        let snap = store.snapshot();
        store.value_mut(a).data_mut()[0] = 5.0;
        store.restore(&snap);
        assert_eq!(store.value(a).data()[0], 0.0);
    }
}
