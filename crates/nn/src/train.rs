//! Training-loop utilities: early stopping.
//!
//! The paper trains "by Adam with the early stop strategy" (§5.3); this
//! module provides the stopping rule as a small, testable state machine.

/// Decision returned by [`EarlyStopper::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// The observed loss improved (or is within tolerance); keep training.
    Improved,
    /// No improvement this epoch, but patience is not yet exhausted.
    NoImprovement,
    /// Patience exhausted — stop training and restore the best weights.
    Stop,
}

/// Patience-based early stopping on a monitored loss.
///
/// `min_delta` guards against "improvements" that are numeric noise: a new
/// loss must beat the best seen by more than `min_delta` to reset patience.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    patience: usize,
    min_delta: f64,
    best: f64,
    best_epoch: usize,
    epochs_seen: usize,
    stale: usize,
}

impl EarlyStopper {
    /// A stopper that allows `patience` consecutive non-improving epochs.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        Self {
            patience,
            min_delta,
            best: f64::INFINITY,
            best_epoch: 0,
            epochs_seen: 0,
            stale: 0,
        }
    }

    /// Feeds one epoch's monitored loss; returns the decision.
    pub fn observe(&mut self, loss: f64) -> StopDecision {
        self.epochs_seen += 1;
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.best_epoch = self.epochs_seen;
            self.stale = 0;
            StopDecision::Improved
        } else {
            self.stale += 1;
            if self.stale > self.patience {
                StopDecision::Stop
            } else {
                StopDecision::NoImprovement
            }
        }
    }

    /// Best loss observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// 1-based epoch index at which the best loss was observed (0 if none).
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }

    /// Copies out the stopper's mutable state for checkpointing. The
    /// patience/`min_delta` configuration is not part of the state.
    pub fn export_state(&self) -> StopperState {
        StopperState {
            best: self.best,
            best_epoch: self.best_epoch,
            epochs_seen: self.epochs_seen,
            stale: self.stale,
        }
    }

    /// Restores state captured by [`EarlyStopper::export_state`];
    /// subsequent [`EarlyStopper::observe`] calls continue the captured
    /// decision sequence exactly.
    pub fn import_state(&mut self, state: &StopperState) {
        self.best = state.best;
        self.best_epoch = state.best_epoch;
        self.epochs_seen = state.epochs_seen;
        self.stale = state.stale;
    }
}

/// Snapshot of an [`EarlyStopper`]'s mutable state, for checkpoint/resume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopperState {
    /// Best monitored loss so far (`f64::INFINITY` before any observation).
    pub best: f64,
    /// 1-based epoch of the best observation (0 if none).
    pub best_epoch: usize,
    /// Number of observations so far.
    pub epochs_seen: usize,
    /// Consecutive non-improving observations.
    pub stale: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStopper::new(2, 0.0);
        assert_eq!(es.observe(1.0), StopDecision::Improved);
        assert_eq!(es.observe(1.1), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.9), StopDecision::Improved);
        assert_eq!(es.observe(0.95), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.96), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.97), StopDecision::Stop);
        assert_eq!(es.best(), 0.9);
        assert_eq!(es.best_epoch(), 3);
    }

    #[test]
    fn min_delta_filters_noise() {
        let mut es = EarlyStopper::new(1, 0.1);
        assert_eq!(es.observe(1.0), StopDecision::Improved);
        // 0.95 is better but not by ≥ 0.1 — counts as stale.
        assert_eq!(es.observe(0.95), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.94), StopDecision::Stop);
    }

    #[test]
    fn state_roundtrip_continues_decisions() {
        let mut a = EarlyStopper::new(2, 0.0);
        let mut b = EarlyStopper::new(2, 0.0);
        for loss in [1.0, 0.8, 0.9] {
            a.observe(loss);
            b.observe(loss);
        }
        // Rebuild `b` from its exported state.
        let state = b.export_state();
        let mut b = EarlyStopper::new(2, 0.0);
        b.import_state(&state);
        for loss in [0.95, 0.96, 0.97] {
            assert_eq!(a.observe(loss), b.observe(loss));
        }
        assert_eq!(a.best_epoch(), b.best_epoch());
    }

    #[test]
    fn zero_patience_stops_on_first_stall() {
        let mut es = EarlyStopper::new(0, 0.0);
        assert_eq!(es.observe(1.0), StopDecision::Improved);
        assert_eq!(es.observe(1.0), StopDecision::Stop);
    }
}
