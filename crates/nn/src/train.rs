//! Training-loop utilities: early stopping.
//!
//! The paper trains "by Adam with the early stop strategy" (§5.3); this
//! module provides the stopping rule as a small, testable state machine.

/// Decision returned by [`EarlyStopper::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// The observed loss improved (or is within tolerance); keep training.
    Improved,
    /// No improvement this epoch, but patience is not yet exhausted.
    NoImprovement,
    /// Patience exhausted — stop training and restore the best weights.
    Stop,
}

/// Patience-based early stopping on a monitored loss.
///
/// `min_delta` guards against "improvements" that are numeric noise: a new
/// loss must beat the best seen by more than `min_delta` to reset patience.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    patience: usize,
    min_delta: f64,
    best: f64,
    best_epoch: usize,
    epochs_seen: usize,
    stale: usize,
}

impl EarlyStopper {
    /// A stopper that allows `patience` consecutive non-improving epochs.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        Self {
            patience,
            min_delta,
            best: f64::INFINITY,
            best_epoch: 0,
            epochs_seen: 0,
            stale: 0,
        }
    }

    /// Feeds one epoch's monitored loss; returns the decision.
    pub fn observe(&mut self, loss: f64) -> StopDecision {
        self.epochs_seen += 1;
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.best_epoch = self.epochs_seen;
            self.stale = 0;
            StopDecision::Improved
        } else {
            self.stale += 1;
            if self.stale > self.patience {
                StopDecision::Stop
            } else {
                StopDecision::NoImprovement
            }
        }
    }

    /// Best loss observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// 1-based epoch index at which the best loss was observed (0 if none).
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStopper::new(2, 0.0);
        assert_eq!(es.observe(1.0), StopDecision::Improved);
        assert_eq!(es.observe(1.1), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.9), StopDecision::Improved);
        assert_eq!(es.observe(0.95), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.96), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.97), StopDecision::Stop);
        assert_eq!(es.best(), 0.9);
        assert_eq!(es.best_epoch(), 3);
    }

    #[test]
    fn min_delta_filters_noise() {
        let mut es = EarlyStopper::new(1, 0.1);
        assert_eq!(es.observe(1.0), StopDecision::Improved);
        // 0.95 is better but not by ≥ 0.1 — counts as stale.
        assert_eq!(es.observe(0.95), StopDecision::NoImprovement);
        assert_eq!(es.observe(0.94), StopDecision::Stop);
    }

    #[test]
    fn zero_patience_stops_on_first_stall() {
        let mut es = EarlyStopper::new(0, 0.0);
        assert_eq!(es.observe(1.0), StopDecision::Improved);
        assert_eq!(es.observe(1.0), StopDecision::Stop);
    }
}
