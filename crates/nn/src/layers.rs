//! Reusable layers: linear projection and an LSTM cell.
//!
//! Layers own [`ParamId`]s, not values: construction registers parameters in
//! a [`ParamStore`], and `forward` replays the layer onto whatever tape the
//! current step is using.

use crate::{BoundParams, ParamId, ParamStoreBase};
use cf_tensor::{he_normal, xavier_uniform, Scalar, TapeBase, TensorBase, VarId};
use rand::Rng;

/// A fully-connected layer `y = x·W + b` applied row-wise.
///
/// `x` has shape `rows×in_dim`; the output is `rows×out_dim`.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a He-initialised linear layer (paper's initialisation).
    pub fn he<E: Scalar, R: Rng + ?Sized>(
        store: &mut ParamStoreBase<E>,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            he_normal(rng, &[in_dim, out_dim], in_dim),
        );
        let b = bias.then(|| store.register(format!("{name}.b"), TensorBase::zeros(&[out_dim])));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Registers a Xavier-initialised linear layer (used by baselines).
    pub fn xavier<E: Scalar, R: Rng + ?Sized>(
        store: &mut ParamStoreBase<E>,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            xavier_uniform(rng, &[in_dim, out_dim], in_dim, out_dim),
        );
        let b = bias.then(|| store.register(format!("{name}.b"), TensorBase::zeros(&[out_dim])));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer on the given tape.
    pub fn forward<E: Scalar>(
        &self,
        tape: &mut TapeBase<E>,
        bound: &BoundParams,
        x: VarId,
    ) -> VarId {
        let y = tape.matmul(x, bound.var(self.w));
        match self.b {
            Some(b) => tape.add_row_vector(y, bound.var(b)),
            None => y,
        }
    }

    /// The weight parameter (`in_dim×out_dim`).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// The bias parameter, if the layer has one.
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// The recurrent state `(h, c)` of an [`LstmCell`], as tape variables.
#[derive(Clone, Copy)]
pub struct LstmState {
    /// Hidden state, `rows×hidden`.
    pub h: VarId,
    /// Cell state, `rows×hidden`.
    pub c: VarId,
}

/// A standard LSTM cell, used by the cLSTM baseline (neural Granger
/// causality with recurrent models, paper §5.2).
///
/// Gates are four independent pairs of input/recurrent projections
/// (`i`, `f`, `g`, `o`), which keeps the tape ops simple (no tensor
/// splitting needed):
///
/// ```text
/// i = σ(x·W_xi + h·W_hi + b_i)     f = σ(x·W_xf + h·W_hf + b_f)
/// g = tanh(x·W_xg + h·W_hg + b_g)  o = σ(x·W_xo + h·W_ho + b_o)
/// c' = f⊙c + i⊙g                   h' = o⊙tanh(c')
/// ```
pub struct LstmCell {
    wx: [ParamId; 4],
    wh: [ParamId; 4],
    b: [ParamId; 4],
    input_dim: usize,
    hidden: usize,
}

impl LstmCell {
    /// Registers an LSTM cell. The forget-gate bias is initialised to 1, the
    /// usual trick for gradient flow early in training.
    pub fn new<E: Scalar, R: Rng + ?Sized>(
        store: &mut ParamStoreBase<E>,
        rng: &mut R,
        name: &str,
        input_dim: usize,
        hidden: usize,
    ) -> Self {
        let gate_names = ["i", "f", "g", "o"];
        let mut wx = Vec::with_capacity(4);
        let mut wh = Vec::with_capacity(4);
        let mut b = Vec::with_capacity(4);
        for gn in gate_names {
            wx.push(store.register(
                format!("{name}.wx_{gn}"),
                xavier_uniform(rng, &[input_dim, hidden], input_dim, hidden),
            ));
            wh.push(store.register(
                format!("{name}.wh_{gn}"),
                xavier_uniform(rng, &[hidden, hidden], hidden, hidden),
            ));
            let init = if gn == "f" {
                TensorBase::ones(&[hidden])
            } else {
                TensorBase::zeros(&[hidden])
            };
            b.push(store.register(format!("{name}.b_{gn}"), init));
        }
        Self {
            wx: [wx[0], wx[1], wx[2], wx[3]],
            wh: [wh[0], wh[1], wh[2], wh[3]],
            b: [b[0], b[1], b[2], b[3]],
            input_dim,
            hidden,
        }
    }

    /// A zero initial state for `rows` parallel sequences.
    pub fn zero_state<E: Scalar>(&self, tape: &mut TapeBase<E>, rows: usize) -> LstmState {
        let h = tape.constant(TensorBase::zeros(&[rows, self.hidden]));
        let c = tape.constant(TensorBase::zeros(&[rows, self.hidden]));
        LstmState { h, c }
    }

    /// One recurrence step: consumes `x_t` (`rows×input_dim`) and the
    /// previous state, returns the next state.
    pub fn step<E: Scalar>(
        &self,
        tape: &mut TapeBase<E>,
        bound: &BoundParams,
        x_t: VarId,
        state: LstmState,
    ) -> LstmState {
        let gate = |tape: &mut TapeBase<E>, k: usize| -> VarId {
            let xp = tape.matmul(x_t, bound.var(self.wx[k]));
            let hp = tape.matmul(state.h, bound.var(self.wh[k]));
            let s = tape.add(xp, hp);
            tape.add_row_vector(s, bound.var(self.b[k]))
        };
        let i_lin = gate(tape, 0);
        let f_lin = gate(tape, 1);
        let g_lin = gate(tape, 2);
        let o_lin = gate(tape, 3);
        let i = tape.sigmoid(i_lin);
        let f = tape.sigmoid(f_lin);
        let g = tape.tanh(g_lin);
        let o = tape.sigmoid(o_lin);
        let fc = tape.mul(f, state.c);
        let ig = tape.mul(i, g);
        let c = tape.add(fc, ig);
        let tc = tape.tanh(c);
        let h = tape.mul(o, tc);
        LstmState { h, c }
    }

    /// Parameter ids of the four input-projection matrices `(i, f, g, o)` —
    /// the weights the cLSTM baseline penalises and inspects for causality.
    pub fn input_weights(&self) -> [ParamId; 4] {
        self.wx
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer, ParamStore};
    use cf_tensor::{Tape, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::he(&mut store, &mut rng, "l", 3, 2, true);
        assert_eq!(store.value(lin.weight()).shape(), &[3, 2]);
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        let x = tape.constant(Tensor::ones(&[4, 3]));
        let y = lin.forward(&mut tape, &bound, x);
        assert_eq!(tape.value(y).shape(), &[4, 2]);
    }

    #[test]
    fn linear_learns_identity_map() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lin = Linear::he(&mut store, &mut rng, "l", 2, 2, true);
        let mut adam = Adam::new(0.05);
        let x_data =
            Tensor::from_vec(vec![4, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5]).unwrap();
        for _ in 0..400 {
            let mut tape = Tape::new();
            let bound = store.bind(&mut tape);
            let x = tape.constant(x_data.clone());
            let y = lin.forward(&mut tape, &bound, x);
            let target = tape.constant(x_data.clone());
            let d = tape.sub(y, target);
            let sq = tape.square(d);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            adam.step(&mut store, &bound, &grads);
        }
        // After training the weight should approximate the identity matrix.
        let w = store.value(lin.weight());
        assert!((w.get2(0, 0) - 1.0).abs() < 0.05, "w00={}", w.get2(0, 0));
        assert!((w.get2(1, 1) - 1.0).abs() < 0.05, "w11={}", w.get2(1, 1));
        assert!(w.get2(0, 1).abs() < 0.05 && w.get2(1, 0).abs() < 0.05);
    }

    #[test]
    fn lstm_state_shapes_and_bounded_activations() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 3, 5);
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        let mut state = cell.zero_state(&mut tape, 2);
        for step in 0..4 {
            let x = tape.constant(Tensor::full(&[2, 3], step as f64));
            state = cell.step(&mut tape, &bound, x, state);
        }
        let h = tape.value(state.h);
        assert_eq!(h.shape(), &[2, 5]);
        // h = o ⊙ tanh(c) ∈ (−1, 1)
        assert!(h.max() < 1.0 && h.min() > -1.0);
    }

    #[test]
    fn lstm_learns_to_remember_first_input() {
        // Task: output after 3 steps should equal the first step's input
        // sign. A memoryless map cannot solve this; the LSTM can.
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 1, 8);
        let head = Linear::he(&mut store, &mut rng, "head", 8, 1, true);
        let mut adam = Adam::new(0.02);
        let inputs: [f64; 2] = [1.0, -1.0];
        for _ in 0..300 {
            let mut pairs = Vec::new();
            let mut tape = Tape::new();
            let bound = store.bind(&mut tape);
            let mut loss_terms = Vec::new();
            for &first in &inputs {
                let mut state = cell.zero_state(&mut tape, 1);
                for s in 0..3 {
                    let v = if s == 0 { first } else { 0.0 };
                    let x = tape.constant(Tensor::from_vec(vec![1, 1], vec![v]).unwrap());
                    state = cell.step(&mut tape, &bound, x, state);
                }
                let y = head.forward(&mut tape, &bound, state.h);
                let t = tape.constant(Tensor::from_vec(vec![1, 1], vec![first]).unwrap());
                let d = tape.sub(y, t);
                let sq = tape.square(d);
                loss_terms.push(tape.sum_all(sq));
            }
            let total = {
                let s = tape.add(loss_terms[0], loss_terms[1]);
                tape.scale(s, 0.5)
            };
            let grads = tape.backward(total);
            pairs.extend(bound.gradients(&grads).map(|(id, g)| (id, g.clone())));
            adam.step_pairs(&mut store, &pairs);
        }
        // Evaluate.
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        let mut outs = Vec::new();
        for &first in &inputs {
            let mut state = cell.zero_state(&mut tape, 1);
            for s in 0..3 {
                let v = if s == 0 { first } else { 0.0 };
                let x = tape.constant(Tensor::from_vec(vec![1, 1], vec![v]).unwrap());
                state = cell.step(&mut tape, &bound, x, state);
            }
            let y = head.forward(&mut tape, &bound, state.h);
            outs.push(tape.value(y).item());
        }
        assert!(outs[0] > 0.5, "expected ≈1, got {}", outs[0]);
        assert!(outs[1] < -0.5, "expected ≈−1, got {}", outs[1]);
    }
}
