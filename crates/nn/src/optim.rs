//! Optimizers and gradient utilities.
//!
//! Optimizer state (moments, velocity) is stored in the training dtype,
//! but the *update arithmetic* runs in `f64` regardless of element type:
//! the per-element cost is negligible next to the kernels, and keeping the
//! moment updates in double precision avoids `ε`-scale rounding artifacts
//! in the f32 path (`v̂` can underflow f32 granularity near convergence).
//! For `E = f64` the conversions are the identity, preserving the bitwise
//! trajectory contract.

use crate::{BoundParams, ParamId, ParamStoreBase};
use cf_tensor::{GradientsBase, Scalar, TensorBase};

/// A first-order optimizer updating a [`ParamStoreBase`] from tape
/// gradients.
pub trait Optimizer<E: Scalar = f64> {
    /// Applies one update step given the gradients of the current tape.
    fn step(
        &mut self,
        store: &mut ParamStoreBase<E>,
        bound: &BoundParams,
        grads: &GradientsBase<E>,
    );

    /// Applies one update from pre-collected `(param, grad)` pairs. Useful
    /// when gradients were accumulated across several tapes (mini-batches).
    fn step_pairs(&mut self, store: &mut ParamStoreBase<E>, pairs: &[(ParamId, TensorBase<E>)]);
}

/// Snapshot of an [`Adam`] optimizer's mutable state (step count, learning
/// rate, and first/second moment estimates), for exact checkpoint/resume.
/// The β/ε hyper-parameters are configuration, not state, and stay with
/// the optimizer they were constructed with.
#[derive(Debug, Clone)]
pub struct AdamStateBase<E: Scalar = f64> {
    /// Bias-correction step count.
    pub t: u64,
    /// Current learning rate (mutable via schedules).
    pub lr: f64,
    /// First-moment estimates, indexed by `ParamId`.
    pub m: Vec<Option<TensorBase<E>>>,
    /// Second-moment estimates, indexed by `ParamId`.
    pub v: Vec<Option<TensorBase<E>>>,
}

/// The `f64` Adam state (the historical API).
pub type AdamState = AdamStateBase<f64>;

/// Adam (Kingma & Ba) with bias correction — the optimizer the paper uses.
pub struct AdamBase<E: Scalar = f64> {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    // Lazily sized first/second moment estimates, indexed by ParamId.
    m: Vec<Option<TensorBase<E>>>,
    v: Vec<Option<TensorBase<E>>>,
}

/// The `f64` Adam optimizer (the historical API).
pub type Adam = AdamBase<f64>;

impl<E: Scalar> AdamBase<E> {
    /// Adam with the given learning rate and the standard defaults
    /// `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Copies out the optimizer's mutable state for checkpointing.
    pub fn export_state(&self) -> AdamStateBase<E> {
        AdamStateBase {
            t: self.t,
            lr: self.lr,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`AdamBase::export_state`]. The next
    /// [`Optimizer::step_pairs`] continues the exact update trajectory of
    /// the captured optimizer.
    pub fn import_state(&mut self, state: AdamStateBase<E>) {
        assert!(state.lr > 0.0, "learning rate must be positive");
        self.t = state.t;
        self.lr = state.lr;
        self.m = state.m;
        self.v = state.v;
    }

    fn ensure_len(&mut self, n: usize) {
        if self.m.len() < n {
            self.m.resize(n, None);
            self.v.resize(n, None);
        }
    }

    fn update_one(&mut self, store: &mut ParamStoreBase<E>, id: ParamId, grad: &TensorBase<E>) {
        let idx = id.index();
        self.ensure_len(idx + 1);
        let value = store.value_mut(id);
        let m = self.m[idx].get_or_insert_with(|| TensorBase::zeros(grad.shape()));
        let v = self.v[idx].get_or_insert_with(|| TensorBase::zeros(grad.shape()));
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        for i in 0..grad.len() {
            let g = grad.data()[i].to_f64();
            let mi = b1 * m.data()[i].to_f64() + (1.0 - b1) * g;
            let vi = b2 * v.data()[i].to_f64() + (1.0 - b2) * g * g;
            m.data_mut()[i] = E::from_f64(mi);
            v.data_mut()[i] = E::from_f64(vi);
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            let next = value.data()[i].to_f64() - lr * m_hat / (v_hat.sqrt() + eps);
            value.data_mut()[i] = E::from_f64(next);
        }
    }
}

impl<E: Scalar> Optimizer<E> for AdamBase<E> {
    fn step(
        &mut self,
        store: &mut ParamStoreBase<E>,
        bound: &BoundParams,
        grads: &GradientsBase<E>,
    ) {
        // Updates read the gradients in place — same visiting order as
        // `step_pairs`, without cloning each tensor first.
        self.t += 1;
        for (id, g) in bound.gradients(grads) {
            self.update_one(store, id, g);
        }
    }

    fn step_pairs(&mut self, store: &mut ParamStoreBase<E>, pairs: &[(ParamId, TensorBase<E>)]) {
        self.t += 1;
        for (id, g) in pairs {
            self.update_one(store, *id, g);
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct SgdBase<E: Scalar = f64> {
    lr: f64,
    momentum: f64,
    velocity: Vec<Option<TensorBase<E>>>,
}

/// The `f64` SGD optimizer (the historical API).
pub type Sgd = SgdBase<f64>;

impl<E: Scalar> SgdBase<E> {
    /// SGD without momentum.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn update_one(&mut self, store: &mut ParamStoreBase<E>, id: ParamId, g: &TensorBase<E>) {
        let idx = id.index();
        if self.velocity.len() <= idx {
            self.velocity.resize(idx + 1, None);
        }
        let value = store.value_mut(id);
        if self.momentum > 0.0 {
            let vel = self.velocity[idx].get_or_insert_with(|| TensorBase::zeros(g.shape()));
            for i in 0..g.len() {
                let v = self.momentum * vel.data()[i].to_f64() + g.data()[i].to_f64();
                vel.data_mut()[i] = E::from_f64(v);
                let next = value.data()[i].to_f64() - self.lr * v;
                value.data_mut()[i] = E::from_f64(next);
            }
        } else {
            value.axpy(-self.lr, g);
        }
    }
}

impl<E: Scalar> Optimizer<E> for SgdBase<E> {
    fn step(
        &mut self,
        store: &mut ParamStoreBase<E>,
        bound: &BoundParams,
        grads: &GradientsBase<E>,
    ) {
        // As with Adam: visit gradients by reference, no per-step clones.
        for (id, g) in bound.gradients(grads) {
            self.update_one(store, id, g);
        }
    }

    fn step_pairs(&mut self, store: &mut ParamStoreBase<E>, pairs: &[(ParamId, TensorBase<E>)]) {
        for (id, g) in pairs {
            self.update_one(store, *id, g);
        }
    }
}

/// Rescales a set of gradients in place so their *global* L2 norm is at most
/// `max_norm`. Returns the pre-clip norm. Standard recipe for keeping early
/// transformer steps stable. The norm accumulates in `f64` for both dtypes.
pub fn clip_global_norm<E: Scalar>(pairs: &mut [(ParamId, TensorBase<E>)], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f64 = pairs
        .iter()
        .map(|(_, g)| {
            g.data()
                .iter()
                .map(|v| {
                    let v = v.to_f64();
                    v * v
                })
                .sum::<f64>()
        })
        .sum::<f64>()
        .sqrt();
    if total > max_norm {
        let scale = E::from_f64(max_norm / total);
        for (_, g) in pairs.iter_mut() {
            for v in g.data_mut() {
                *v *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamStore;
    use cf_tensor::{Tape, Tensor};

    fn optimize(opt: &mut dyn Optimizer<f64>, steps: usize, target: f64) -> f64 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[0.0]));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let bound = store.bind(&mut tape);
            let t = tape.constant(Tensor::from_slice(&[target]));
            let d = tape.sub(bound.var(w), t);
            let sq = tape.square(d);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            opt.step(&mut store, &bound, &grads);
        }
        store.value(w).item()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2);
        let w = optimize(&mut adam, 200, 3.0);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let w = optimize(&mut sgd, 200, -2.0);
        assert!((w + 2.0).abs() < 1e-4, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let w = optimize(&mut sgd, 300, 1.5);
        assert!((w - 1.5).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[0.0]));
        let mut adam = Adam::new(0.1);
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        let t = tape.constant(Tensor::from_slice(&[1000.0]));
        let d = tape.sub(bound.var(w), t);
        let sq = tape.square(d);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        adam.step(&mut store, &bound, &grads);
        let step = store.value(w).item();
        assert!((step.abs() - 0.1).abs() < 1e-6, "step = {step}");
    }

    #[test]
    fn adam_state_roundtrip_continues_trajectory() {
        // Two optimizers: one runs 10 steps straight; the other runs 5,
        // exports, is rebuilt from the state, and runs 5 more. Parameter
        // trajectories must be bitwise identical.
        let run = |split: Option<usize>| -> f64 {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor::from_slice(&[0.0]));
            let mut adam = Adam::new(0.2);
            for step in 0..10 {
                if split == Some(step) {
                    let state = adam.export_state();
                    adam = Adam::new(123.0); // wrong lr on purpose
                    adam.import_state(state);
                }
                let g = Tensor::from_slice(&[store.value(w).item() - 3.0]);
                adam.step_pairs(&mut store, &[(w, g)]);
            }
            store.value(w).item()
        };
        assert_eq!(run(None).to_bits(), run(Some(5)).to_bits());
    }

    #[test]
    fn clip_global_norm_scales_down_only_when_needed() {
        let mut pairs = vec![
            (ParamId::from_raw(0), Tensor::from_slice(&[3.0])),
            (ParamId::from_raw(1), Tensor::from_slice(&[4.0])),
        ];
        let pre = clip_global_norm(&mut pairs, 1.0);
        assert_eq!(pre, 5.0);
        let post: f64 = pairs
            .iter()
            .map(|(_, g)| g.data().iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            .sqrt();
        assert!((post - 1.0).abs() < 1e-12);

        let mut small = vec![(ParamId::from_raw(0), Tensor::from_slice(&[0.1]))];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small[0].1.data()[0], 0.1); // untouched
    }

    #[test]
    fn f32_adam_converges_on_quadratic() {
        let mut store = ParamStoreBase::<f32>::new();
        let w = store.register("w", TensorBase::<f32>::from_slice(&[0.0]));
        let mut adam = AdamBase::<f32>::new(0.2);
        for _ in 0..200 {
            let g = TensorBase::<f32>::from_slice(&[store.value(w).item() - 3.0]);
            adam.step_pairs(&mut store, &[(w, g)]);
        }
        let val = store.value(w).item();
        assert!((val - 3.0).abs() < 1e-2, "w = {val}");
    }
}
