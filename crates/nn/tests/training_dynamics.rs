//! Integration tests of training dynamics: optimizers on non-trivial
//! objectives, gradient clipping interplay, and recurrent gradient flow.

use cf_nn::{
    clip_global_norm, Adam, EarlyStopper, Linear, LstmCell, Optimizer, ParamStore, Sgd,
    StopDecision,
};
use cf_tensor::{uniform, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fits y = sin(x) with a 2-layer MLP; checks the loss drops by 10×.
#[test]
fn mlp_fits_sine() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let l1 = Linear::he(&mut store, &mut rng, "l1", 1, 16, true);
    let l2 = Linear::he(&mut store, &mut rng, "l2", 16, 1, true);
    let mut adam = Adam::new(1e-2);

    let xs: Vec<f64> = (0..64)
        .map(|i| i as f64 / 64.0 * std::f64::consts::TAU)
        .collect();
    let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
    let x_t = Tensor::from_vec(vec![64, 1], xs).unwrap();
    let y_t = Tensor::from_vec(vec![64, 1], ys).unwrap();

    let mut first = None;
    let mut last = 0.0;
    for _ in 0..400 {
        let mut tape = Tape::new();
        let bound = store.bind(&mut tape);
        let x = tape.constant(x_t.clone());
        let h_pre = l1.forward(&mut tape, &bound, x);
        let h = tape.tanh(h_pre);
        let pred = l2.forward(&mut tape, &bound, h);
        let tgt = tape.constant(y_t.clone());
        let d = tape.sub(pred, tgt);
        let sq = tape.square(d);
        let loss = tape.mean_all(sq);
        last = tape.value(loss).item();
        first.get_or_insert(last);
        let grads = tape.backward(loss);
        adam.step(&mut store, &bound, &grads);
    }
    let first = first.unwrap();
    assert!(last < first / 10.0, "loss {first} → {last}");
}

/// Adam escapes a plateau faster than plain SGD on an ill-conditioned
/// quadratic (the reason the paper trains with Adam).
#[test]
fn adam_beats_sgd_on_ill_conditioned_quadratic() {
    let run = |use_adam: bool| -> f64 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[5.0, 5.0]));
        let mut adam = Adam::new(0.1);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let mut tape = Tape::new();
            let bound = store.bind(&mut tape);
            // loss = 0.5·(100·w0² + 0.01·w1²)
            let scale = tape.mul_const(bound.var(w), Tensor::from_slice(&[10.0, 0.1]));
            let sq = tape.square(scale);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            if use_adam {
                adam.step(&mut store, &bound, &grads);
            } else {
                // SGD with lr stable for the stiff direction.
                let mut pairs: Vec<_> = bound
                    .gradients(&grads)
                    .map(|(i, g)| (i, g.clone()))
                    .collect();
                clip_global_norm(&mut pairs, 1.0);
                sgd.step_pairs(&mut store, &pairs);
            }
        }
        // Distance of the *slow* coordinate from optimum.
        store.value(w).data()[1].abs()
    };
    let adam_res = run(true);
    let sgd_res = run(false);
    assert!(
        adam_res < sgd_res,
        "adam {adam_res} should beat clipped sgd {sgd_res} on the flat direction"
    );
}

/// Gradient clipping caps a pathological gradient burst without touching
/// well-scaled steps.
#[test]
fn clipping_contains_gradient_bursts() {
    let mut store = ParamStore::new();
    let w = store.register("w", Tensor::from_slice(&[1.0]));
    let huge = Tensor::from_slice(&[1e9]);
    let mut pairs = vec![(store.ids().next().unwrap(), huge)];
    let pre = clip_global_norm(&mut pairs, 1.0);
    assert_eq!(pre, 1e9);
    let mut adam = Adam::new(0.1);
    adam.step_pairs(&mut store, &pairs);
    let moved = (store.value(w).item() - 1.0).abs();
    assert!(moved <= 0.11, "step {moved} exceeded lr despite clipping");
}

/// BPTT through 30 steps still delivers gradients to the input projection
/// of the first step (no vanishing to exact zero, no explosion).
#[test]
fn lstm_gradients_survive_long_bptt() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, &mut rng, "lstm", 2, 8);
    let head = Linear::he(&mut store, &mut rng, "head", 8, 1, true);

    let mut tape = Tape::new();
    let bound = store.bind(&mut tape);
    let mut state = cell.zero_state(&mut tape, 1);
    for step in 0..30 {
        let x = tape.constant(uniform(
            &mut StdRng::seed_from_u64(step as u64),
            &[1, 2],
            -1.0,
            1.0,
        ));
        state = cell.step(&mut tape, &bound, x, state);
    }
    let out = head.forward(&mut tape, &bound, state.h);
    let loss = tape.sum_all(out);
    let grads = tape.backward(loss);
    for wx in cell.input_weights() {
        let g = grads.expect(bound.var(wx), "input weight");
        assert!(g.all_finite());
        assert!(g.l2_norm() > 0.0, "gradient vanished to exactly zero");
        assert!(g.l2_norm() < 1e6, "gradient exploded: {}", g.l2_norm());
    }
}

/// Early stopping + snapshot/restore integrate: training a noisy objective
/// keeps the best weights, not the last.
#[test]
fn early_stopping_keeps_best_snapshot() {
    let mut store = ParamStore::new();
    let w = store.register("w", Tensor::from_slice(&[0.0]));
    let mut stopper = EarlyStopper::new(2, 0.0);
    let mut best_snapshot = store.snapshot();

    // Scripted "validation losses": improves, then worsens.
    let script = [1.0, 0.5, 0.2, 0.6, 0.9, 1.2];
    for (epoch, &loss) in script.iter().enumerate() {
        // Pretend training moved the weight each epoch.
        store.value_mut(w).data_mut()[0] = epoch as f64;
        match stopper.observe(loss) {
            StopDecision::Improved => best_snapshot = store.snapshot(),
            StopDecision::NoImprovement => {}
            StopDecision::Stop => break,
        }
    }
    store.restore(&best_snapshot);
    // Best epoch was index 2 (loss 0.2) where w == 2.0.
    assert_eq!(store.value(w).item(), 2.0);
    assert_eq!(stopper.best(), 0.2);
}
