//! Integration tests spanning the workspace crates: data generators →
//! training → detection → metrics, plus cross-method comparisons on the
//! common [`Discoverer`] interface.

use causalformer::{detector, presets, trainer, DetectorConfig, DetectorMode};
use cf_baselines::{
    Clstm, ClstmConfig, Cmlp, CmlpConfig, Cuts, CutsConfig, Discoverer, Dvgnn, DvgnnConfig, Tcdf,
    TcdfConfig,
};
use cf_bench::methods::{build_method, generate_datasets, DatasetKind, MethodKind};
use cf_data::{fmri_sim, lorenz96, synthetic, window};
use cf_metrics::score;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny-but-real CausalFormer config for integration testing.
fn quick_cf(n: usize) -> causalformer::CausalFormer {
    let mut cf = presets::synthetic_sparse(n);
    cf.model.d_model = 12;
    cf.model.d_qk = 12;
    cf.model.d_ffn = 12;
    cf.model.window = 8;
    cf.train.max_epochs = 20;
    cf.train.stride = 2;
    cf
}

#[test]
fn causalformer_beats_empty_graph_on_every_synthetic_structure() {
    for structure in synthetic::Structure::ALL {
        let mut rng = StdRng::seed_from_u64(11);
        let data = synthetic::generate(&mut rng, structure, 300);
        let cf = quick_cf(data.num_series());
        let result = cf.discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &result.graph);
        assert!(
            f1 > 0.3,
            "{}: F1 {f1} barely above empty-graph baseline; got {}",
            structure.name(),
            result.graph
        );
    }
}

#[test]
fn pipeline_is_deterministic_given_seed() {
    let mut rng_a = StdRng::seed_from_u64(5);
    let data = synthetic::generate(&mut rng_a, synthetic::Structure::Fork, 200);
    let cf = quick_cf(3);
    let ga = cf
        .discover(&mut StdRng::seed_from_u64(9), &data.series)
        .graph;
    let gb = cf
        .discover(&mut StdRng::seed_from_u64(9), &data.series)
        .graph;
    assert_eq!(ga, gb);
}

#[test]
fn every_discoverer_runs_on_the_same_dataset() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Mediator, 150);
    let methods: Vec<Box<dyn Discoverer>> = vec![
        Box::new(Cmlp::new(CmlpConfig {
            epochs: 10,
            ..Default::default()
        })),
        Box::new(Clstm::new(ClstmConfig {
            epochs: 3,
            ..Default::default()
        })),
        Box::new(Tcdf::new(TcdfConfig {
            epochs: 10,
            ..Default::default()
        })),
        Box::new(Dvgnn::new(DvgnnConfig {
            epochs: 20,
            ..Default::default()
        })),
        Box::new(Cuts::new(CutsConfig {
            epochs: 10,
            ..Default::default()
        })),
    ];
    for m in methods {
        let g = m.discover(&mut rng, &data.series);
        assert_eq!(
            g.num_series(),
            3,
            "{} returned wrong vertex count",
            m.name()
        );
        // Delay annotations must be consistent with the capability flag.
        if !m.outputs_delays() {
            assert!(g.edges().all(|e| e.delay.is_none()), "{}", m.name());
        }
    }
}

#[test]
fn detector_modes_all_produce_valid_graphs_from_one_trained_model() {
    let mut rng = StdRng::seed_from_u64(21);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Diamond, 250);
    let cf = quick_cf(4);
    let std_series = window::standardize(&data.series);
    let windows = window::windows(&std_series, cf.model.window, cf.train.stride);
    let (trained, report) = trainer::train(&mut rng, cf.model, cf.train, &windows);
    assert!(report.train_losses.last().unwrap() < &report.train_losses[0]);

    for mode in [
        DetectorMode::Full,
        DetectorMode::NoInterpretation,
        DetectorMode::NoRelevance,
        DetectorMode::NoGradient,
        DetectorMode::NoBias,
    ] {
        let cfg = DetectorConfig {
            mode,
            ..cf.detector
        };
        let (graph, scores) =
            detector::detect(&mut rng, &trained.model, &trained.store, &windows, &cfg);
        assert_eq!(graph.num_series(), 4, "{mode:?}");
        for i in 0..4 {
            for j in 0..4 {
                assert!(scores.attn[i][j].is_finite(), "{mode:?} score ({i},{j})");
            }
        }
        // Every edge must carry a delay within the representable range
        // (window − 1 for cross edges, window for shifted self edges).
        for e in graph.edges() {
            let d = e.delay.expect("CausalFormer annotates delays");
            assert!(d <= cf.model.window, "{mode:?}: delay {d} out of range");
        }
    }
}

#[test]
fn lorenz96_discovery_recovers_self_loops() {
    // Self-causation is the strongest Lorenz-96 signal (the −x_i term);
    // any sane configuration must recover most self loops.
    // Seed chosen to give a clear margin under the vendored RNG stream.
    let mut rng = StdRng::seed_from_u64(0);
    let data = lorenz96::generate_random_forcing(&mut rng, 10, 200);
    let mut cf = presets::lorenz96(10);
    cf.model.d_model = 12;
    cf.model.d_qk = 12;
    cf.model.d_ffn = 12;
    cf.model.window = 8;
    cf.train.max_epochs = 15;
    cf.train.stride = 2;
    let graph = cf.discover(&mut rng, &data.series).graph;
    let self_found = (0..10).filter(|&i| graph.has_edge(i, i)).count();
    assert!(self_found >= 8, "only {self_found}/10 self loops found");
}

#[test]
fn fmri_simulation_feeds_the_full_pipeline() {
    let mut rng = StdRng::seed_from_u64(2);
    let data = fmri_sim::generate(&mut rng, fmri_sim::FmriConfig::netsim_like(5, 120));
    let mut cf = presets::fmri(5);
    cf.model.d_model = 12;
    cf.model.d_qk = 12;
    cf.model.d_ffn = 12;
    cf.model.window = 8;
    cf.train.max_epochs = 15;
    let result = cf.discover(&mut rng, &data.series);
    let c = score::confusion(&data.truth, &result.graph);
    // With 5 regions the empty graph scores 0; require something real.
    assert!(c.f1() > 0.2, "F1 {} on a 5-region network", c.f1());
}

#[test]
fn harness_registry_methods_run_end_to_end() {
    // The cf-bench registry is what the table binaries iterate; make sure a
    // representative cell runs.
    let datasets = generate_datasets(DatasetKind::Fork, 0, true);
    let data = &datasets[0];
    for kind in [MethodKind::Cmlp, MethodKind::CausalFormer] {
        let method = build_method(kind, DatasetKind::Fork, data.num_series(), true);
        let mut rng = StdRng::seed_from_u64(0);
        let graph = method.discover(&mut rng, &data.series);
        let f1 = score::f1(&data.truth, &graph);
        assert!(f1 > 0.3, "{}: F1 {f1}", method.name());
    }
}

#[test]
fn statistic_methods_dominate_linear_synthetics() {
    // The table1x headline: on near-linear SEMs, VAR-Granger beats the
    // deep methods. Pin that ordering so benchmark drift is caught.
    use cf_baselines::{Pcmci, VarGranger};
    let mut rng = StdRng::seed_from_u64(30);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Diamond, 600);
    let var = VarGranger::default().discover(&mut rng, &data.series);
    let pcmci = Pcmci::default().discover(&mut rng, &data.series);
    assert!(score::f1(&data.truth, &var) >= 0.8, "VAR {}", var);
    assert!(score::f1(&data.truth, &pcmci) >= 0.8, "PCMCI {}", pcmci);
}

#[test]
fn linear_testers_fail_on_henon_coupling() {
    // The nonlinear experiment's headline: quadratic Hénon coupling is
    // invisible to linear Granger tests at strong coupling.
    use cf_baselines::VarGranger;
    use cf_data::henon::{self, HenonConfig};
    let mut rng = StdRng::seed_from_u64(31);
    let data = henon::generate(
        &mut rng,
        HenonConfig {
            coupling: 0.5,
            length: 400,
            ..HenonConfig::default()
        },
    );
    let var = VarGranger::default().discover(&mut rng, &data.series);
    let chain_hits = data
        .truth
        .non_self_edges()
        .filter(|e| var.has_edge(e.from, e.to))
        .count();
    assert!(
        chain_hits <= 1,
        "linear VAR should miss the quadratic chain, found {chain_hits}"
    );
}

#[test]
fn permutation_scores_rank_the_true_cause_on_a_trained_model() {
    // The perturbation read-out of a trained model must rank the true
    // cause above the non-cause (the decomposition read-out is covered by
    // the core pipeline tests).
    let mut rng = StdRng::seed_from_u64(32);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Fork, 300);
    // Sharp attention (τ = 1) so the trained model actually routes
    // cross-series information; at τ = 100 predictions are self-dominated
    // and permutation deltas are noise.
    let mut cf = quick_cf(3);
    cf.model.temperature = 1.0;
    let std_series = window::standardize(&data.series);
    let windows = window::windows(&std_series, cf.model.window, cf.train.stride);
    let (trained, _) = trainer::train(&mut rng, cf.model, cf.train, &windows);
    let perm_scores =
        detector::permutation_scores(&mut rng, &trained.model, &trained.store, &windows[..4]);
    // Fork: S1 (idx 0) is the only non-self cause of S2 (idx 1); the
    // permutation read-out must rank it above the non-cause S3 (idx 2).
    assert!(
        perm_scores.attn[1][0] > perm_scores.attn[1][2],
        "cause {} vs non-cause {}",
        perm_scores.attn[1][0],
        perm_scores.attn[1][2]
    );
}

#[test]
fn csv_roundtrip_feeds_discovery() {
    // generate → CSV → parse → discover, entirely through public APIs.
    use cf_data::io;
    let mut rng = StdRng::seed_from_u64(33);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Fork, 250);
    let names: Vec<String> = (1..=3).map(|i| format!("S{i}")).collect();
    let mut buf = Vec::new();
    io::write_series_csv(&mut buf, &data.series, &names).unwrap();
    let parsed = io::read_series_csv(buf.as_slice()).unwrap();
    assert_eq!(parsed.series, data.series);
    let cf = quick_cf(3);
    let result = cf.discover(&mut rng, &parsed.series);
    assert!(score::f1(&data.truth, &result.graph) > 0.3);
}

#[test]
fn persisted_model_detects_identically() {
    let mut rng = StdRng::seed_from_u64(34);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Mediator, 250);
    let cf = quick_cf(3);
    let std_series = window::standardize(&data.series);
    let windows = window::windows(&std_series, cf.model.window, cf.train.stride);
    let (trained, _) = trainer::train(&mut rng, cf.model, cf.train, &windows);
    let json = causalformer::persist::to_json(&trained).unwrap();
    let loaded = causalformer::persist::from_json(&json).unwrap();
    let mut r1 = StdRng::seed_from_u64(1);
    let mut r2 = StdRng::seed_from_u64(1);
    let (g1, _) = detector::detect(
        &mut r1,
        &trained.model,
        &trained.store,
        &windows,
        &cf.detector,
    );
    let (g2, _) = detector::detect(
        &mut r2,
        &loaded.model,
        &loaded.store,
        &windows,
        &cf.detector,
    );
    assert_eq!(g1, g2);
}

#[test]
fn ranking_metrics_track_detector_quality() {
    // AUROC of the detector's raw scores should comfortably beat 0.5 on a
    // structure it discovers well.
    use cf_metrics::ranking;
    let mut rng = StdRng::seed_from_u64(35);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Fork, 300);
    let cf = quick_cf(3);
    let result = cf.discover(&mut rng, &data.series);
    let scored: Vec<(usize, usize, f64)> = (0..3)
        .flat_map(|i| (0..3).map(move |j| (j, i, 0.0)))
        .map(|(from, to, _)| (from, to, result.scores.attn[to][from]))
        .collect();
    let auroc = ranking::auroc(&data.truth, &scored).unwrap();
    assert!(auroc > 0.6, "AUROC {auroc}");
}

#[test]
fn graph_scoring_composes_with_dot_export() {
    let mut rng = StdRng::seed_from_u64(13);
    let data = synthetic::generate(&mut rng, synthetic::Structure::Fork, 200);
    let cf = quick_cf(3);
    let graph = cf.discover(&mut rng, &data.series).graph;
    let truth = data.truth.clone();
    let dot = graph.to_dot("fork", move |e| {
        if truth.has_edge(e.from, e.to) {
            cf_metrics::EdgeClass::TruePositive
        } else {
            cf_metrics::EdgeClass::FalsePositive
        }
    });
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("S1"));
}
