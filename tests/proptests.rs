//! Property-based tests (proptest) on the substrate invariants the
//! CausalFormer pipeline depends on: autodiff correctness, causal-
//! convolution temporal priority, softmax/attention algebra, k-means and
//! scoring invariants, and RRP conservation behaviour.

use causalformer::rrp::{propagate, RrpLayers};
use cf_metrics::kmeans::{kmeans_1d, top_class_mask};
use cf_metrics::{score, CausalGraph};
use cf_tensor::{ops, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor_strategy(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-2.0f64..2.0, n)
        .prop_map(move |data| Tensor::from_vec(shape.clone(), data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Temporal priority: perturbing the input at slot `t0` never changes
    /// any causal-convolution output before `t0`.
    #[test]
    fn causal_conv_never_looks_ahead(
        x in tensor_strategy(vec![3, 6]),
        k in tensor_strategy(vec![3, 3, 6]),
        t0 in 0usize..6,
        series in 0usize..3,
        delta in 0.5f64..2.0,
    ) {
        let base = ops::causal_conv(&x, &k);
        let mut x2 = x.clone();
        x2.set2(series, t0, x2.get2(series, t0) + delta);
        let pert = ops::causal_conv(&x2, &k);
        for i in 0..3 {
            for j in 0..3 {
                for t in 0..t0 {
                    prop_assert_eq!(base.get3(i, j, t), pert.get3(i, j, t));
                }
            }
        }
    }

    /// The self-shift guarantees a series' current value never reaches its
    /// own value row at the same slot.
    #[test]
    fn self_shift_hides_current_value(
        x in tensor_strategy(vec![2, 5]),
        k in tensor_strategy(vec![2, 2, 5]),
        t0 in 0usize..5,
        delta in 0.5f64..2.0,
    ) {
        let shifted = ops::self_shift(&ops::causal_conv(&x, &k));
        let mut x2 = x.clone();
        x2.set2(0, t0, x2.get2(0, t0) + delta);
        let shifted2 = ops::self_shift(&ops::causal_conv(&x2, &k));
        // Diagonal row of series 0 at slot t0 must be unchanged.
        prop_assert_eq!(shifted.get3(0, 0, t0), shifted2.get3(0, 0, t0));
    }

    /// Autodiff gradients match finite differences for a composite
    /// expression over random inputs (spot-check of the tape as a whole).
    #[test]
    fn tape_gradient_matches_finite_difference(
        a in tensor_strategy(vec![2, 3]),
        b in tensor_strategy(vec![3, 2]),
        idx in 0usize..6,
    ) {
        let f = |a_t: &Tensor, b_t: &Tensor| -> (f64, Option<Tensor>, Option<Tensor>) {
            let mut tape = Tape::new();
            let av = tape.leaf(a_t.clone(), true);
            let bv = tape.leaf(b_t.clone(), true);
            let prod = tape.matmul(av, bv);
            let act = tape.tanh(prod);
            let sq = tape.square(act);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            (
                tape.value(loss).item(),
                grads.get(av).cloned(),
                grads.get(bv).cloned(),
            )
        };
        let (base, ga, _) = f(&a, &b);
        let eps = 1e-6;
        let mut a2 = a.clone();
        a2.data_mut()[idx] += eps;
        let (perturbed, _, _) = f(&a2, &b);
        let numeric = (perturbed - base) / eps;
        let analytic = ga.expect("grad present").data()[idx];
        prop_assert!((numeric - analytic).abs() < 1e-4 * (1.0 + analytic.abs()),
            "numeric {} vs analytic {}", numeric, analytic);
    }

    /// Softmax rows are a probability simplex for any input.
    #[test]
    fn softmax_rows_is_simplex(m in tensor_strategy(vec![4, 7])) {
        let s = m.softmax_rows();
        for i in 0..4 {
            let row = s.row(i);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// k-means assignments reference valid centroids and respect order:
    /// a larger value never lands in a cluster with a smaller centroid
    /// than a smaller value's cluster (1-d monotonicity).
    #[test]
    fn kmeans_1d_is_monotone(values in proptest::collection::vec(-10.0f64..10.0, 2..40), k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(0);
        let c = kmeans_1d(&mut rng, &values, k);
        prop_assert_eq!(c.assignment.len(), values.len());
        for (i, &ai) in c.assignment.iter().enumerate() {
            prop_assert!(ai < c.centroids.len());
            for (j, &aj) in c.assignment.iter().enumerate() {
                if values[i] < values[j] {
                    prop_assert!(c.centroids[ai] <= c.centroids[aj] + 1e-9,
                        "value {} in cluster c={} but larger value {} in cluster c={}",
                        values[i], c.centroids[ai], values[j], c.centroids[aj]);
                }
            }
        }
    }

    /// `top_class_mask` selects a prefix of the sorted values: everything
    /// selected is ≥ everything unselected.
    #[test]
    fn top_class_mask_is_a_threshold(values in proptest::collection::vec(0.0f64..5.0, 2..30)) {
        let mut rng = StdRng::seed_from_u64(1);
        let mask = top_class_mask(&mut rng, &values, 2, 1);
        let selected_min = values.iter().zip(&mask).filter(|(_, &m)| m).map(|(v, _)| *v)
            .fold(f64::INFINITY, f64::min);
        let unselected_max = values.iter().zip(&mask).filter(|(_, &m)| !m).map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(selected_min >= unselected_max - 1e-9);
    }

    /// F1 is symmetric under exchanging prediction and truth, bounded in
    /// [0,1], and 1 iff the graphs have identical edge sets.
    #[test]
    fn f1_axioms(edges_a in proptest::collection::vec((0usize..4, 0usize..4), 0..8),
                 edges_b in proptest::collection::vec((0usize..4, 0usize..4), 0..8)) {
        let mut ga = CausalGraph::new(4);
        for (f, t) in &edges_a { ga.add_edge(*f, *t, None); }
        let mut gb = CausalGraph::new(4);
        for (f, t) in &edges_b { gb.add_edge(*f, *t, None); }
        let f_ab = score::f1(&ga, &gb);
        let f_ba = score::f1(&gb, &ga);
        prop_assert!((f_ab - f_ba).abs() < 1e-12, "F1 must be symmetric");
        prop_assert!((0.0..=1.0).contains(&f_ab));
        if ga == gb && !ga.is_empty() {
            prop_assert_eq!(f_ab, 1.0);
        }
    }

    /// RRP relevance is finite and non-negative (z⁺ rule) for arbitrary
    /// forward states, and lands only on the target's rows.
    #[test]
    fn rrp_relevance_is_finite_nonnegative_and_targeted(
        x in tensor_strategy(vec![3, 4]),
        kernel in tensor_strategy(vec![3, 3, 4]),
        logits in tensor_strategy(vec![3, 3]),
        w_out in tensor_strategy(vec![4, 4]),
        target in 0usize..3,
    ) {
        // Build a consistent forward state on a real tape.
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone(), true);
        let kv = tape.leaf(kernel.clone(), true);
        let conv = tape.causal_conv(xv, kv);
        let shifted = tape.self_shift(conv);
        let lv = tape.leaf(logits.clone(), true);
        let attn = tape.softmax_rows(lv);
        let head = tape.attn_apply(attn, shifted);
        // Trivial FFN (identity-ish): reuse head as both pre and act with a
        // single output layer.
        let wv = tape.leaf(w_out.clone(), true);
        let pred = tape.matmul(head, wv);

        let zeros_t = Tensor::zeros(&[4]);
        let ident = Tensor::eye(4);
        let w_o = Tensor::from_slice(&[1.0]);
        let layers = RrpLayers {
            x: &x,
            pred: tape.value(pred),
            ffn_out: tape.value(head),
            ffn_act: tape.value(head),
            ffn_pre: tape.value(head),
            att: tape.value(head),
            head_out: std::slice::from_ref(tape.value(head)),
            attn: std::slice::from_ref(tape.value(attn)),
            shifted: tape.value(shifted),
            conv: tape.value(conv),
            bank: &kernel,
            w_out: &w_out,
            b_out: &zeros_t,
            w2: &ident,
            b2: &zeros_t,
            w1: &ident,
            b1: &zeros_t,
            w_o: &w_o,
            with_bias: true,
        };
        let rel = propagate(&layers, target);
        for h in &rel.attn {
            for i in 0..3 {
                for j in 0..3 {
                    let v = h.get2(i, j);
                    prop_assert!(v.is_finite() && v >= 0.0, "attn rel ({i},{j}) = {v}");
                    if i != target {
                        prop_assert!(v.abs() < 1e-9, "relevance leaked to row {i}");
                    }
                }
            }
        }
        prop_assert!(rel.kernel.all_finite());
        prop_assert!(rel.kernel.min() >= 0.0);
    }
}
