//! Discover the coupling stencil of the Lorenz-96 climate model — the
//! paper's simulated-climate benchmark (§5.1, Eq. 21).
//!
//! ```text
//! cargo run -p cf-bench --release --example lorenz96_discovery
//! ```
//!
//! Each Lorenz-96 variable is driven by its neighbours `i−2, i−1, i+1` and
//! itself; this example integrates the ODE with RK4, runs CausalFormer, and
//! renders the recovered adjacency as a text matrix so the cyclic band
//! structure is visible.

use causalformer::presets;
use cf_data::lorenz96::{generate, Lorenz96Config};
use cf_metrics::score;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(96);

    let config = Lorenz96Config {
        n: 10,
        length: 500,
        forcing: 35.0,
        ..Lorenz96Config::default()
    };
    let data = generate(&mut rng, config);
    println!(
        "Lorenz-96: {} variables, F = {}, {} samples",
        config.n, config.forcing, config.length
    );

    let mut cf = presets::lorenz96(config.n);
    cf.model.window = 8;
    cf.train.max_epochs = 40;
    let result = cf.discover(&mut rng, &data.series);

    let c = score::confusion(&data.truth, &result.graph);
    println!(
        "precision {:.2}  recall {:.2}  F1 {:.2}   (paper: 0.69±0.06 at full scale)\n",
        c.precision(),
        c.recall(),
        c.f1()
    );

    // Adjacency matrices: rows = cause, cols = effect.
    println!("truth (█) vs discovered (▒ extra, · missing):");
    let n = config.n;
    print!("      ");
    for j in 0..n {
        print!("S{:<3}", j + 1);
    }
    println!();
    for i in 0..n {
        print!("  S{:<3}", i + 1);
        for j in 0..n {
            let truth = data.truth.has_edge(i, j);
            let found = result.graph.has_edge(i, j);
            let glyph = match (truth, found) {
                (true, true) => "█   ",
                (true, false) => "·   ",
                (false, true) => "▒   ",
                (false, false) => "    ",
            };
            print!("{glyph}");
        }
        println!();
    }
    println!("\n(█ = true positive, · = missed, ▒ = false positive)");
}
