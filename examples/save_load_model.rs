//! Train a causality-aware transformer once, save it, and rerun the
//! detector from the checkpoint — the workflow for separating expensive
//! training from cheap re-analysis (e.g. sweeping detector densities).
//!
//! ```text
//! cargo run -p cf-bench --release --example save_load_model
//! ```

use causalformer::{detector, persist, presets, trainer, DetectorConfig};
use cf_data::synthetic::{generate, Structure};
use cf_data::window;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = generate(&mut rng, Structure::Mediator, 400);
    let cf = presets::synthetic_dense(data.num_series());

    // Train once.
    let std_series = window::standardize(&data.series);
    let windows = window::windows(&std_series, cf.model.window, cf.train.stride);
    let (trained, report) = trainer::train(&mut rng, cf.model, cf.train, &windows);
    println!(
        "trained {} epochs (best validation at epoch {})",
        report.train_losses.len(),
        report.best_epoch
    );

    // Save and reload.
    let path = std::env::temp_dir().join("causalformer_mediator.json");
    persist::save(&trained, &path).expect("checkpoint written");
    println!("checkpoint: {}", path.display());
    let loaded = persist::load(&path).expect("checkpoint read");

    // Re-detect from the checkpoint at two different graph densities —
    // no retraining needed.
    for (n_clusters, m_top) in [(2usize, 1usize), (4, 2)] {
        let det = DetectorConfig {
            n_clusters,
            m_top,
            ..cf.detector
        };
        let mut det_rng = StdRng::seed_from_u64(1);
        let (graph, _) =
            detector::detect(&mut det_rng, &loaded.model, &loaded.store, &windows, &det);
        println!("m/n = {m_top}/{n_clusters}: {graph}");
    }
    println!("ground truth:  {}", data.truth);
    std::fs::remove_file(&path).ok();
}
