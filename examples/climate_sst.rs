//! Sea-surface-temperature case study (paper §5.6, Figs. 9–10) on the
//! advection lattice: do discovered causal relations follow the ocean
//! currents?
//!
//! ```text
//! cargo run -p cf-bench --release --example climate_sst
//! ```

use causalformer::presets;
use cf_data::sst_sim::{generate, Meridional, SstConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);
    let sst = generate(
        &mut rng,
        SstConfig {
            height: 6,
            width: 6,
            ..SstConfig::default()
        },
    );
    let n = sst.height * sst.width;
    println!(
        "SST lattice {}×{} with a prescribed clockwise gyre, {} slots",
        sst.height,
        sst.width,
        sst.dataset.len()
    );

    // Remove the shared seasonal signal (basin-mean anomaly), as one would
    // deseasonalise real SST before causal analysis.
    let mut series = sst.dataset.series.clone();
    let l = series.shape()[1];
    for t in 0..l {
        let mean: f64 = (0..n).map(|c| series.get2(c, t)).sum::<f64>() / n as f64;
        for c in 0..n {
            let v = series.get2(c, t) - mean;
            series.set2(c, t, v);
        }
    }

    let mut cf = presets::sst(n);
    cf.train.max_epochs = 20;
    let result = cf.discover(&mut rng, &series);

    let mut s2n = 0;
    let mut n2s = 0;
    let mut zonal = 0;
    for e in result.graph.non_self_edges() {
        match sst.meridional(e.from, e.to) {
            Meridional::SouthToNorth => s2n += 1,
            Meridional::NorthToSouth => n2s += 1,
            Meridional::Zonal => zonal += 1,
        }
    }
    println!(
        "\ndiscovered {} relations: {s2n} S→N, {n2s} N→S, {zonal} zonal",
        result.graph.non_self_edges().count()
    );
    println!(
        "F1 against the prescribed advection graph: {:.2}",
        cf_metrics::score::f1(&sst.dataset.truth, &result.graph)
    );
    println!(
        "\nThe paper's Fig. 10 finding is directional: warm western-boundary \
         currents produce S→N relations, the cold eastern boundary N→S. Run \
         the fig10 binary for the per-basin-half breakdown."
    );
}
