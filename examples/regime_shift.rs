//! Rolling-window discovery on non-stationary data: the causal direction
//! between two series flips halfway through the recording, and
//! `discover_rolling` localises both regimes.
//!
//! ```text
//! cargo run -p cf-bench --release --example regime_shift
//! ```

use causalformer::presets;
use cf_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let len = 400usize;

    // Regime A (first half): S1 drives S2 at lag 2. Regime B: S2 drives
    // S1. A third independent series keeps the per-target k-means cut
    // meaningful.
    let mut data = vec![0.0f64; 3 * len];
    for t in 2..len {
        let (n0, n1, n2): (f64, f64, f64) = (
            rng.gen::<f64>() - 0.5,
            rng.gen::<f64>() - 0.5,
            rng.gen::<f64>() - 0.5,
        );
        if t < len / 2 {
            data[t] = 0.3 * data[t - 1] + n0;
            data[len + t] = 0.8 * data[t - 2] + 0.7 * n1;
        } else {
            data[len + t] = 0.3 * data[len + t - 1] + n1;
            data[t] = 0.8 * data[len + t - 2] + 0.7 * n0;
        }
        data[2 * len + t] = 0.3 * data[2 * len + t - 1] + n2;
    }
    let series = Tensor::from_vec(vec![3, len], data).expect("consistent");

    let mut cf = presets::synthetic_dense(3);
    cf.model.window = 8;
    cf.train.max_epochs = 25;
    cf.train.stride = 2;

    println!("rolling discovery over segments of {} slots:\n", len / 4);
    for seg in cf.discover_rolling(&mut rng, &series, len / 4, len / 8) {
        let s1_to_s2 = seg.graph.has_edge(0, 1);
        let s2_to_s1 = seg.graph.has_edge(1, 0);
        let regime = match (s1_to_s2, s2_to_s1) {
            (true, false) => "S1 → S2",
            (false, true) => "S2 → S1",
            (true, true) => "bidirectional",
            (false, false) => "no cross relation",
        };
        println!("  slots {:>3}..{:>3}: {}", seg.start, seg.end, regime);
    }
    println!(
        "\nexpected: S1 → S2 in early segments, S2 → S1 in late ones, with \
         mixed signals around the regime boundary (slot {})",
        len / 2
    );
}
