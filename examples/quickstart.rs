//! Quickstart: discover the causal structure of a synthetic "fork" system.
//!
//! ```text
//! cargo run -p cf-bench --release --example quickstart
//! ```
//!
//! Generates three time series where `S1` drives both `S2` (lag 1) and `S3`
//! (lag 2), runs the CausalFormer pipeline, and prints the discovered
//! temporal causal graph next to the ground truth.

use causalformer::presets;
use cf_data::synthetic::{generate, Structure};
use cf_metrics::score;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Get some time series with known causal structure.
    let data = generate(&mut rng, Structure::Fork, 600);
    println!("ground truth: {}", data.truth);

    // 2. Configure CausalFormer. Presets mirror the paper's per-dataset
    //    hyper-parameters; every field is public if you want to tweak.
    let mut cf = presets::synthetic_sparse(data.num_series());
    cf.train.max_epochs = 40;

    // 3. Discover. The pipeline standardises the series, trains the
    //    causality-aware transformer on self-prediction, then interprets the
    //    trained model with regression relevance propagation.
    let result = cf.discover(&mut rng, &data.series);
    println!("discovered:   {}", result.graph);

    // 4. Score against the ground truth.
    let c = score::confusion(&data.truth, &result.graph);
    println!(
        "precision {:.2}  recall {:.2}  F1 {:.2}",
        c.precision(),
        c.recall(),
        c.f1()
    );
    if let Some(pod) = score::pod(&data.truth, &result.graph) {
        println!("precision of delay: {pod:.2}");
    }

    println!(
        "\ntraining: {} epochs, loss {:.4} → {:.4}",
        result.train_report.train_losses.len(),
        result.train_report.train_losses.first().unwrap(),
        result.train_report.train_losses.last().unwrap(),
    );
}
