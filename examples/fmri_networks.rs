//! Compare all six discovery methods on a simulated fMRI brain network —
//! the workload behind the paper's Table 1 fMRI column and Fig. 8.
//!
//! ```text
//! cargo run -p cf-bench --release --example fmri_networks
//! ```
//!
//! Generates one NetSim-style 10-region BOLD dataset (latent causal
//! dynamics → hemodynamic response convolution → observation noise) and
//! runs CausalFormer next to the five baselines, printing an F1 ranking.

use cf_baselines::{Clstm, Cmlp, Cuts, Discoverer, Dvgnn, Tcdf};
use cf_bench::methods::CausalFormerMethod;
use cf_data::fmri_sim::{generate, FmriConfig};
use cf_metrics::score;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(10);
    let data = generate(&mut rng, FmriConfig::netsim_like(10, 250));
    println!(
        "simulated fMRI network: {} regions, {} BOLD samples, {} true relations\n",
        data.num_series(),
        data.len(),
        data.truth.num_edges()
    );

    let methods: Vec<Box<dyn Discoverer>> = vec![
        Box::new(Cmlp::default()),
        Box::new(Clstm::default()),
        Box::new(Tcdf::default()),
        Box::new(Dvgnn::default()),
        Box::new(Cuts::default()),
        Box::new(CausalFormerMethod {
            pipeline: causalformer::presets::fmri(data.num_series()),
        }),
    ];

    let mut ranking = Vec::new();
    for method in &methods {
        eprintln!("running {} …", method.name());
        let mut mrng = StdRng::seed_from_u64(7);
        let graph = method.discover(&mut mrng, &data.series);
        let c = score::confusion(&data.truth, &graph);
        ranking.push((method.name(), c));
    }
    ranking.sort_by(|a, b| b.1.f1().partial_cmp(&a.1.f1()).expect("finite F1"));

    println!(
        "{:<14} {:>9} {:>7} {:>5}",
        "method", "precision", "recall", "F1"
    );
    for (name, c) in &ranking {
        println!(
            "{name:<14} {:>9.2} {:>7.2} {:>5.2}",
            c.precision(),
            c.recall(),
            c.f1()
        );
    }
}
