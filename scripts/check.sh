#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The suite runs twice — serial and with a 4-worker pool — to enforce the
# determinism contract: results must be identical at any thread count.
echo "== cargo test -q --workspace (CF_THREADS=1)"
CF_THREADS=1 cargo test -q --workspace

echo "== cargo test -q --workspace (CF_THREADS=4)"
CF_THREADS=4 cargo test -q --workspace

# Resume-determinism gate: interrupted-then-resumed training (3 epochs →
# checkpoint → resume 3 more) must be bitwise identical to 6 epochs straight
# — parameters, loss history, and the downstream causal matrix — and the
# fault drills (injected NaN, injected I/O failure, kill between epochs,
# on-disk corruption) must recover. The store-pipeline gate rides along:
# discovery streamed from a chunked on-disk store must be bitwise identical
# to the in-RAM path, and a corrupted chunk must fail loudly naming its
# file. Run at 1, 2, and 4 worker threads: recovery and store/RAM
# equivalence must be exact on any machine.
for threads in 1 2 4; do
  echo "== resume determinism + fault drills + store pipeline (CF_THREADS=$threads)"
  CF_THREADS=$threads cargo test -q -p causalformer \
    --test resume_determinism --test fault_injection --test store_pipeline
done

# Dtype gate: the f64 pipeline must reproduce the pre-generic-backend
# golden bits, and f32 training must land discovery F1 within ±0.02 of
# f64 — the test sweeps 1/2/4 worker threads internally.
echo "== dtype equivalence gate (f64 goldens + f32 tolerance)"
cargo test -q -p causalformer --test dtype_equivalence

# Out-of-core peak-RSS gate: stream a lorenz96 trajectory into a chunked
# store and run discovery from it in a child process; the binary parses
# the child's VmHWM and exits 1 if the peak crosses the 200 MB budget.
# Mirrors the CI bench-smoke gate so a memory regression fails locally
# before it fails on the runner.
echo "== out-of-core peak-RSS gate (par_baseline --smoke --oocore-only)"
cargo run -q --release -p cf-bench --bin par_baseline -- --smoke --oocore-only

# Report smoke: a real discover run must produce a loadable trace, a
# diagnostics stream, and an HTML dashboard containing every panel.
# Two discover runs (1 and 2 threads) give the analyze/report compare
# path a real trace pair.
echo "== causalformer report smoke"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q -p cf-cli --bin causalformer -- \
  generate --dataset fork --length 200 --seed 1 --output "$smoke_dir/fork.csv"
cargo run -q -p cf-cli --bin causalformer -- \
  discover --input "$smoke_dir/fork.csv" --preset synthetic-sparse \
  --window 8 --epochs 3 --seed 1 --quiet --threads 1 \
  --trace-out "$smoke_dir/trace-1t.json"
cargo run -q -p cf-cli --bin causalformer -- \
  discover --input "$smoke_dir/fork.csv" --preset synthetic-sparse \
  --window 8 --epochs 3 --seed 1 --quiet --threads 2 \
  --metrics-out "$smoke_dir/metrics.jsonl" \
  --trace-out "$smoke_dir/trace.json" \
  --diag-out "$smoke_dir/diag.cfdiag" \
  --heartbeat-out "$smoke_dir/hb.jsonl"
# The heartbeat stream must open with its meta header, close with
# run_end, and render through the monitor in one-shot mode.
head -1 "$smoke_dir/hb.jsonl" | grep -q '"event":"meta"'
tail -1 "$smoke_dir/hb.jsonl" | grep -q '"event":"run_end"'
cargo run -q -p cf-cli --bin causalformer -- \
  monitor "$smoke_dir/hb.jsonl" --once > "$smoke_dir/monitor.txt"
grep -q "run ended cleanly" "$smoke_dir/monitor.txt"
# Single-precision leg: the same discover end-to-end at --dtype f32 must
# run clean and emit a metrics stream.
cargo run -q -p cf-cli --bin causalformer -- \
  discover --input "$smoke_dir/fork.csv" --preset synthetic-sparse \
  --window 8 --epochs 3 --seed 1 --quiet --threads 2 --dtype f32 \
  --metrics-out "$smoke_dir/metrics-f32.jsonl"
test -s "$smoke_dir/metrics-f32.jsonl"
cargo run -q -p cf-cli --bin causalformer -- \
  report --metrics "$smoke_dir/metrics.jsonl" \
  --trace "$smoke_dir/trace-1t.json" --compare-trace "$smoke_dir/trace.json" \
  --diag "$smoke_dir/diag.cfdiag" \
  --out "$smoke_dir/report.html"
test -s "$smoke_dir/report.html"
for panel in panel-training-loss panel-causal-evolution \
             panel-thread-utilization panel-pool \
             panel-top-self-time panel-flame panel-scaling \
             panel-percentiles panel-scheduler; do
  grep -q "id=\"$panel\"" "$smoke_dir/report.html" \
    || { echo "missing $panel in report.html"; exit 1; }
done
grep -q '"traceEvents"' "$smoke_dir/trace.json"
grep -q '"record":"detect"' "$smoke_dir/diag.cfdiag"

# Trace-analysis smoke: the analyzer must produce self-time and scaling
# tables from the same pair, and bench-diff must report a committed
# baseline as identical to itself (exit 0).
echo "== causalformer analyze + bench-diff smoke"
cargo run -q -p cf-cli --bin causalformer -- \
  analyze --trace "$smoke_dir/trace.json" \
  --flamegraph "$smoke_dir/stacks.folded" > "$smoke_dir/analyze.md"
grep -q "top self-time spans" "$smoke_dir/analyze.md"
grep -q ";" "$smoke_dir/stacks.folded"
cargo run -q -p cf-cli --bin causalformer -- \
  analyze --compare "$smoke_dir/trace-1t.json" "$smoke_dir/trace.json" \
  > "$smoke_dir/analyze-compare.md"
grep -q "scaling attribution" "$smoke_dir/analyze-compare.md"
for base in BENCH_PR4.json BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json BENCH_CI.json; do
  cargo run -q -p cf-cli --bin causalformer -- \
    bench-diff "$base" "$base" > "$smoke_dir/bench-diff.md"
  grep -q "OK: no cell regressed" "$smoke_dir/bench-diff.md"
done

echo "All checks passed."
