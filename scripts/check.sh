#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The suite runs twice — serial and with a 4-worker pool — to enforce the
# determinism contract: results must be identical at any thread count.
echo "== cargo test -q --workspace (CF_THREADS=1)"
CF_THREADS=1 cargo test -q --workspace

echo "== cargo test -q --workspace (CF_THREADS=4)"
CF_THREADS=4 cargo test -q --workspace

echo "All checks passed."
