#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "All checks passed."
