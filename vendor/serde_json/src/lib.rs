//! Offline stand-in for `serde_json`: compact/pretty serialisation and a
//! recursive-descent parser over the [`Value`] data model defined in the
//! vendored `serde` crate. Integer-valued tokens keep integer identity;
//! floats round-trip exactly via Rust's shortest `Display` repr and
//! correctly-rounded `from_str` (the `float_roundtrip` behaviour).

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialisation or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialises `value` as pretty JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: \uXXXX\uXXXX.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if neg {
                if let Ok(n) = text.parse::<i64>() {
                    // serde_json keeps -0 as a float (i64 has no -0).
                    if n != 0 {
                        return Ok(Value::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let text = r#"{"a":1,"b":-2,"c":0.5,"d":[true,false,null],"e":"x\ny","f":{}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_i64(), Some(-2));
        assert_eq!(v["c"].as_f64(), Some(0.5));
        assert_eq!(v["e"].as_str(), Some("x\ny"));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 2.2250738585072014e-308, 6.02e23] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }
}
