//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for non-generic structs with named fields —
//! the only shapes this workspace derives. Parses the raw token stream
//! (no `syn`/`quote` available offline) and emits impls of the
//! data-model traits defined in the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Parsed {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and named-field list from a derive input.
fn parse_struct(input: TokenStream, trait_name: &str) -> Parsed {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, incl. doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!("derive({trait_name}) supports only structs, got {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected struct name, got {other:?}"),
    };

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive({trait_name}) does not support generic structs")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive({trait_name}) does not support tuple structs")
            }
            Some(_) => continue,
            None => panic!("derive({trait_name}): struct {name} has no body"),
        }
    };

    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("derive({trait_name}): expected field name, got {other:?}"),
            None => break,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive({trait_name}): expected `:` after {field}, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        // (`<`/`>` are bare puncts, unlike parens/brackets which arrive as
        // groups, so generic arguments need explicit depth tracking.)
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
                None => break,
            }
        }
        fields.push(field);
    }

    Parsed { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input, "Serialize");
    let mut pairs = String::new();
    for f in &parsed.fields {
        pairs.push_str(&format!(
            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input, "Deserialize");
    let mut inits = String::new();
    for f in &parsed.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(\
                 v.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{f}\"))?\
             )?,"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Object(_) => Ok(Self {{ {inits} }}),\n\
                     other => Err(::serde::DeError::expected(\"object\", other)),\n\
                 }}\n\
             }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
