//! Offline stand-in for `proptest`: deterministic random-input testing
//! with the subset of the API this workspace uses — `proptest!` /
//! `prop_assert!` / `prop_assert_eq!`, `Strategy` with `prop_map`,
//! range and tuple strategies, `collection::vec`, and
//! `ProptestConfig::with_cases`. No shrinking: a failing case reports
//! its case index and seed instead of a minimised input.

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Element-count specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size` (a fixed `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The usual imports for writing property tests.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Runs `body` for each random case; used by the `proptest!` expansion.
pub fn run_cases<A, S, B>(config: &ProptestConfig, test_name: &str, strategies: &S, body: B)
where
    S: Strategy<Value = A>,
    B: Fn(A) -> Result<(), String>,
{
    use rand::SeedableRng;
    for case in 0..config.cases {
        // Per-case seed derived from the test name so distinct tests see
        // distinct streams but each run is reproducible.
        let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(name_hash ^ (case as u64));
        let input = strategies.new_value(&mut rng);
        if let Err(msg) = body(input) {
            panic!("{test_name}: case {case}/{} failed: {msg}", config.cases);
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written in the block and passed
/// through) that runs the body over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                $crate::run_cases(&config, stringify!($name), &strategies, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case with
/// an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_cases(
            &ProptestConfig::with_cases(8),
            "always_fails",
            &(0usize..4,),
            |(_n,)| Err("failed".to_string()),
        );
    }
}
