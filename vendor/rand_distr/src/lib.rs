//! Offline stand-in for `rand_distr`: the `Normal` distribution plus
//! re-exports of `Distribution`/`Uniform` from the vendored `rand`.

use rand::RngCore;
use std::fmt;

pub use rand::distributions::{Distribution, Standard, Uniform};

/// Errors constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// Sampling uses the Box–Muller transform — not the upstream ziggurat,
/// so seeded draws differ from upstream `rand_distr` but the
/// distribution is exact.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`; `std_dev == 0` degenerates to a point
    /// mass, matching upstream behaviour.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms → one standard normal (the second
        // variate is discarded; Distribution::sample is &self, so no
        // cache). u1 must be strictly positive for the log.
        let u1 = loop {
            let v = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if v > 0.0 {
                break v;
            }
        };
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(2.0, 3.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn zero_std_is_point_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
