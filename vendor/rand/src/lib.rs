//! Offline stand-in for the `rand` crate covering the API surface this
//! workspace uses. See `vendor/README.md`.
//!
//! `rngs::StdRng` is a genuine ChaCha12 stream cipher RNG with the
//! standard PCG-based `seed_from_u64` seed expansion, so seeded runs are
//! deterministic and of cryptographic stream quality. Distributional
//! helpers (`gen_range`, `Standard`) follow the upstream algorithms
//! (53-bit mantissa floats, widening-multiply integer ranges).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the same
    /// expansion `rand_core` 0.6 uses), then calls [`from_seed`].
    ///
    /// [`from_seed`]: SeedableRng::from_seed
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn f64_open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits scaled into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Largest float strictly below `x` (for half-open range clamping).
#[inline]
fn next_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + (self.end - self.start) * f64_open01(rng);
        // Rounding can land exactly on the excluded endpoint.
        if v >= self.end {
            next_down(self.end)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * f64_open01(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Unbiased integer in `[0, span)` via widening multiply with rejection
/// (Lemire's method, as upstream `rand` 0.8 uses for `sample_single`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = if span.is_power_of_two() {
        u64::MAX
    } else {
        (u64::MAX - span + 1) / span * span - 1
    };
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        let lo = m as u64;
        if lo <= zone || zone == u64::MAX {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64_open01(self) < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
