//! Distributions: the `Standard` catch-all and a float `Uniform`.

use crate::{RngCore, SampleRange};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform `[0,1)` floats, uniform
/// integers over the full domain, fair bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $m:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32,
                   u64: next_u64, usize: next_u64,
                   i8: next_u32, i16: next_u32, i32: next_u32,
                   i64: next_u64, isize: next_u64);

/// Uniform distribution over an `f64` interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    low: f64,
    high: f64,
    inclusive: bool,
}

impl Uniform {
    /// Uniform on the half-open interval `[low, high)`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Self {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform on the closed interval `[low, high]`.
    pub fn new_inclusive(low: f64, high: f64) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Self {
            low,
            high,
            inclusive: true,
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.inclusive {
            (self.low..=self.high).sample_single(rng)
        } else {
            (self.low..self.high).sample_single(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_half_open_excludes_high() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Uniform::new(-0.5, 0.5);
        for _ in 0..5000 {
            let v = d.sample(&mut rng);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn uniform_inclusive_covers_bounds_region() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new_inclusive(1.0, 3.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..5000 {
            let v = d.sample(&mut rng);
            assert!((1.0..=3.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 1.01 && max > 2.99);
    }
}
