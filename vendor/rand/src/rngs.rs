//! Standard RNG: ChaCha12, matching upstream `rand 0.8`'s choice of
//! algorithm for `StdRng`.

use crate::{RngCore, SeedableRng};

/// ChaCha12-based RNG. Deterministic from its seed; word stream follows
/// the standard ChaCha block layout (little-endian u32 words).
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce (stream id) fixed at zero.
        let initial = state;
        for _ in 0..6 {
            // One double round (column + diagonal) per iteration: 12 rounds.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Packs the complete generator state into ten words: the eight key
    /// words (zero-extended), the block counter, and the intra-block
    /// cursor. Together with [`StdRng::from_state_words`] this makes the
    /// generator checkpointable: a restored generator continues the exact
    /// word stream of the captured one.
    pub fn state_words(&self) -> [u64; 10] {
        let mut w = [0u64; 10];
        for (dst, key) in w[..8].iter_mut().zip(self.key.iter()) {
            *dst = *key as u64;
        }
        w[8] = self.counter;
        w[9] = self.idx as u64;
        w
    }

    /// Rebuilds a generator from [`StdRng::state_words`] output. The
    /// keystream buffer is reconstructed by re-running the block function,
    /// so the ten words are the *entire* state. Returns `None` if a word
    /// is out of range (cursor > 16 or a key word above `u32::MAX`).
    pub fn from_state_words(words: &[u64; 10]) -> Option<Self> {
        let idx = words[9];
        if idx > 16 {
            return None;
        }
        let mut key = [0u32; 8];
        for (dst, src) in key.iter_mut().zip(words.iter()) {
            *dst = u32::try_from(*src).ok()?;
        }
        let mut rng = Self {
            key,
            counter: words[8],
            buf: [0; 16],
            idx: 16,
        };
        if idx < 16 {
            // The buffer mid-block belongs to the *previous* counter value
            // (refill increments after generating); rewind and regenerate.
            rng.counter = words[8].wrapping_sub(1);
            rng.refill();
            rng.idx = idx as usize;
        }
        Some(rng)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        // Advance to a mid-block position (not a multiple of 16 words).
        for _ in 0..37 {
            rng.next_u32();
        }
        let words = rng.state_words();
        let mut restored = StdRng::from_state_words(&words).expect("valid state");
        for _ in 0..200 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        // Fresh-from-seed state (empty buffer) also roundtrips.
        let fresh = StdRng::seed_from_u64(7);
        let mut a = StdRng::from_state_words(&fresh.state_words()).expect("valid state");
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn invalid_state_words_rejected() {
        let mut words = StdRng::seed_from_u64(0).state_words();
        words[9] = 17; // cursor out of range
        assert!(StdRng::from_state_words(&words).is_none());
        let mut words = StdRng::seed_from_u64(0).state_words();
        words[3] = u64::MAX; // key word too wide
        assert!(StdRng::from_state_words(&words).is_none());
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&w));
            let x = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
