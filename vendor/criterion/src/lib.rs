//! Offline stand-in for `criterion`: a minimal wall-clock bencher with
//! the API surface this workspace's benches use. Each benchmark runs a
//! short warm-up, then a fixed number of timed samples, and prints
//! median / mean per-iteration times. No statistical analysis, HTML
//! reports, or comparison against saved baselines.

use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARMUP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// How `iter_batched` amortises setup cost; the stand-in runs one
/// routine call per setup regardless, so the variants only exist for
/// source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last run, for reporting.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, running it in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // rough per-iteration cost to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter.max(1e-12)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up with a handful of runs (setup may be expensive).
        let warm_start = Instant::now();
        let mut warmed = 0;
        while warm_start.elapsed() < WARMUP && warmed < 16 {
            let input = setup();
            std::hint::black_box(routine(input));
            warmed += 1;
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<50} median {:>12} mean {:>12} ({} samples)",
            format_duration(median),
            format_duration(mean),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Ends the group (no-op; exists for source compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            sample_size: self.effective_sample_size(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_sample_size());
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            DEFAULT_SAMPLE_SIZE
        } else {
            self.sample_size
        }
    }
}

/// Registers bench functions under a group name; expands to a function
/// the matching `criterion_main!` calls.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
