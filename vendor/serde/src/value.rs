//! The JSON-shaped value tree shared by `serde` and `serde_json`.
//!
//! Numbers keep their integer/float identity (as `serde_json` does) so
//! `1` serialises as `1`, not `1.0`. Object fields preserve insertion
//! order, so derived struct serialisation emits fields in declaration
//! order. Float formatting uses Rust's shortest-round-trip `Display`
//! and parsing uses the correctly-rounded `f64::from_str`, so
//! float → text → float is bit-exact (the `float_roundtrip` guarantee).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self(format!("expected {what}, found {}", found.kind()))
    }

    /// Error for a struct field absent from the object.
    pub fn missing_field(name: &str) -> Self {
        Self(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// The value's JSON type name (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Boolean value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Borrows the string content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array items.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutably borrows the array items.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutably looks up an object field.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                out.push_str(&n.to_string());
            }
            Value::Int(n) => {
                out.push_str(&n.to_string());
            }
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Pretty JSON with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == 0.0 && x.is_sign_negative() {
            // Keep the sign bit through the round-trip.
            out.push_str("-0.0");
        } else {
            out.push_str(&x.to_string());
        }
    } else {
        // JSON cannot express NaN/inf; serde_json emits null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Panics if `self` is not an object containing `key` (mirrors
    /// `serde_json`'s panicking index for missing keys on non-objects;
    /// missing keys yield `Null` there, but every workspace use indexes
    /// present keys, so panicking with context is more useful here).
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no field {key:?} in {}", self.kind()))
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let kind = self.kind();
        self.get_mut(key)
            .unwrap_or_else(|| panic!("no field {key:?} in {kind}"))
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => &items[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}
