//! Offline stand-in for `serde`: a JSON-shaped value data model with
//! `Serialize`/`Deserialize` traits and derive macros re-exported from
//! the companion `serde_derive` crate. See `vendor/README.md`.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected(concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}

de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
